//! # gabm-fasvm — register-bytecode compiler and VM for FAS models
//!
//! The tree-walking interpreter ([`gabm_fas::FasMachine`]) is the
//! hottest loop in behavioural simulation: it re-enters the model body
//! every Newton iteration. This crate compiles a
//! [`gabm_fas::CompiledModel`] down to a flat register bytecode and
//! executes it with a match-dispatch loop — the ELDO-style "compiled
//! model" pipeline the paper's §5 timings assume:
//!
//! ```text
//! CompiledModel ──lower──▶ linear IR ──dce──▶ IR ──regalloc──▶ Program
//!                 (const folding,                (linear scan,
//!                  select conversion,             ≤256 f64 regs)
//!                  dead branches)
//! ```
//!
//! The same bytecode runs in two lanes: a scalar `f64` loop for
//! residual evaluation and a dual-number loop that carries per-pin
//! tangents, so [`FasVm`] keeps the interpreter's analytic
//! `eval_with_jacobian`. Numeric semantics mirror the interpreter
//! operation-for-operation — the differential test suite in
//! `tests/differential.rs` holds both backends to ulp-scale agreement.
//!
//! ```
//! use gabm_fasvm::compile_program;
//! use gabm_sim::devices::BehavioralModel;
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let model = gabm_fas::compile(
//!     "model amp pin (a) param (g=2.0)\nanalog\n\
//!      make v = g * volt.value(a)\nmake curr.on(a) = v\n\
//!      endanalog\nendmodel\n",
//! )?;
//! let prog = compile_program(&model)?;
//! let vm = prog.instantiate(&Default::default())?;
//! assert_eq!(vm.pin_count(), 1);
//! # Ok(())
//! # }
//! ```

pub mod backend;
pub mod bytecode;
mod exec;
mod ir;
mod regalloc;

pub use backend::FasBackend;
pub use bytecode::{CompileStats, Op, Program};
pub use exec::FasVm;

use gabm_fas::compile::CompiledModel;
use gabm_fas::machine::delayt_var;
use std::collections::HashMap;
use std::fmt;

/// Bytecode-compilation failure. These are capacity errors, not model
/// errors — any model the front end accepts is semantically lowerable,
/// but the fixed-width encoding bounds register pressure and table
/// sizes. Callers can always fall back to the interpreter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmError {
    /// The model needs more than 256 simultaneously live values.
    RegisterPressure {
        /// Live values at the point allocation failed.
        needed: usize,
    },
    /// A table or the instruction stream overflows its index width.
    TooLarge {
        /// Which table overflowed.
        what: &'static str,
        /// Its size.
        count: usize,
    },
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::RegisterPressure { needed } => write!(
                f,
                "register pressure too high: {needed} live values exceed the {} register file",
                regalloc::MAX_REGS
            ),
            VmError::TooLarge { what, count } => {
                write!(f, "{what} table too large for bytecode encoding: {count}")
            }
        }
    }
}

impl std::error::Error for VmError {}

/// Compiles a model to bytecode: lowering (with constant folding, dead
/// branches and select conversion), dead-code elimination, linear-scan
/// register allocation and emission.
///
/// # Errors
///
/// [`VmError`] on encoding-capacity overflow; see its docs.
pub fn compile_program(model: &CompiledModel) -> Result<Program, VmError> {
    let _span = gabm_trace::span_with("fasvm.compile", "model", || model.name().to_string());
    let lowered = {
        let _p = gabm_trace::span("fasvm.lower");
        ir::lower(model)
    };
    let ir::Lowered {
        insts,
        n_vregs,
        mut stats,
    } = lowered;
    let insts = {
        let _p = gabm_trace::span("fasvm.dce");
        ir::dce(insts, &mut stats)
    };
    let (assign, n_regs) = {
        let _p = gabm_trace::span("fasvm.regalloc");
        regalloc::allocate(&insts, n_vregs)?
    };
    let (ops, consts) = {
        let _p = gabm_trace::span("fasvm.emit");
        emit(&insts, &assign, model)?
    };
    let delayt_vars = (0..model.n_delayt())
        .map(|inst| delayt_var(model.body(), inst))
        .collect();
    Ok(Program {
        name: model.name().to_string(),
        pins: model.pins().iter().map(|p| p.to_string()).collect(),
        params: model.params().to_vec(),
        var_names: model.var_names().to_vec(),
        consts,
        ops,
        n_regs,
        n_dt: model.n_dt(),
        n_idt: model.n_idt(),
        n_delayt: model.n_delayt(),
        delayt_vars,
        stats,
    })
}

fn narrow<T: TryFrom<usize>>(v: usize, what: &'static str) -> Result<T, VmError> {
    T::try_from(v).map_err(|_| VmError::TooLarge { what, count: v })
}

/// IR → bytecode: drops labels, patches jump targets to instruction
/// indices, interns constants into a deduplicated pool and narrows
/// every index to its encoded width.
fn emit(
    insts: &[ir::VInst],
    assign: &[u8],
    model: &CompiledModel,
) -> Result<(Vec<Op>, Vec<f64>), VmError> {
    use ir::VInst as V;
    // Label positions: the index of the next real instruction.
    let mut label_pc: HashMap<ir::Label, usize> = HashMap::new();
    let mut pc = 0usize;
    for inst in insts {
        if let V::Label(l) = inst {
            label_pc.insert(*l, pc);
        } else {
            pc += 1;
        }
    }
    narrow::<u16>(pc, "instruction")?;
    narrow::<u8>(model.pins().len(), "pin")?;
    narrow::<u16>(model.var_names().len(), "variable")?;
    narrow::<u16>(model.params().len(), "parameter")?;

    let mut consts: Vec<f64> = Vec::new();
    let mut const_idx: HashMap<u64, u16> = HashMap::new();
    let mut intern = |v: f64| -> Result<u16, VmError> {
        if let Some(&k) = const_idx.get(&v.to_bits()) {
            return Ok(k);
        }
        let k = narrow::<u16>(consts.len(), "constant")?;
        consts.push(v);
        const_idx.insert(v.to_bits(), k);
        Ok(k)
    };
    let r = |v: ir::VReg| assign[v as usize];
    let target = |l: ir::Label| label_pc[&l] as u16;

    let mut ops = Vec::with_capacity(pc);
    for inst in insts {
        let op = match *inst {
            V::Label(_) => continue,
            V::Const { dst, v } => Op::Const {
                dst: r(dst),
                k: intern(v)?,
            },
            V::LoadPin { dst, pin } => Op::LoadPin {
                dst: r(dst),
                pin: pin as u8,
            },
            V::LoadParam { dst, p } => Op::LoadParam {
                dst: r(dst),
                p: p as u16,
            },
            V::LoadScratch { dst, var } => Op::LoadScratch {
                dst: r(dst),
                var: var as u16,
            },
            V::LoadCommitted { dst, var } => Op::LoadCommitted {
                dst: r(dst),
                var: var as u16,
            },
            V::LoadTime { dst } => Op::LoadTime { dst: r(dst) },
            V::LoadTemp { dst } => Op::LoadTemp { dst: r(dst) },
            V::LoadTimeStep { dst } => Op::LoadTimeStep { dst: r(dst) },
            V::Neg { dst, a } => Op::Neg {
                dst: r(dst),
                a: r(a),
            },
            V::Bin { dst, op, a, b } => {
                use gabm_fas::ast::BinOp;
                let (dst, a, b) = (r(dst), r(a), r(b));
                match op {
                    BinOp::Add => Op::Add { dst, a, b },
                    BinOp::Sub => Op::Sub { dst, a, b },
                    BinOp::Mul => Op::Mul { dst, a, b },
                    BinOp::Div => Op::Div { dst, a, b },
                }
            }
            V::Call1 { dst, f, a } => Op::Call1 {
                dst: r(dst),
                f,
                a: r(a),
            },
            V::Call2 { dst, f, a, b } => Op::Call2 {
                dst: r(dst),
                f,
                a: r(a),
                b: r(b),
            },
            V::Limit { dst, x, lo, hi } => Op::Limit {
                dst: r(dst),
                x: r(x),
                lo: r(lo),
                hi: r(hi),
            },
            V::Dt { dst, inst, a } => Op::Dt {
                dst: r(dst),
                inst: narrow::<u16>(inst, "state")?,
                a: r(a),
            },
            V::DelayT { dst, inst, var, td } => Op::DelayT {
                dst: r(dst),
                inst: narrow::<u16>(inst, "state")?,
                var: var as u16,
                td: r(td),
            },
            V::Idt { dst, inst, a } => Op::Idt {
                dst: r(dst),
                inst: narrow::<u16>(inst, "state")?,
                a: r(a),
            },
            V::StoreVar { var, src } => Op::StoreVar {
                var: var as u16,
                src: r(src),
            },
            V::Impose { pin, src } => Op::Impose {
                pin: pin as u8,
                src: r(src),
            },
            V::Select {
                dst,
                op,
                a,
                b,
                t,
                f,
            } => Op::Select {
                dst: r(dst),
                op,
                a: r(a),
                b: r(b),
                t: r(t),
                f: r(f),
            },
            V::Jump(l) => Op::Jump { target: target(l) },
            V::JumpIfNot {
                op,
                a,
                b,
                target: l,
            } => Op::JumpIfNot {
                op,
                a: r(a),
                b: r(b),
                target: target(l),
            },
            V::JumpIfModeNot { dc, target: l } => Op::JumpIfModeNot {
                dc,
                target: target(l),
            },
        };
        ops.push(op);
    }
    Ok((ops, consts))
}
