//! Bytecode execution: scalar and dual-number dispatch loops.
//!
//! [`FasVm`] is the drop-in VM counterpart of
//! [`gabm_fas::FasMachine`]: same committed-state model, same
//! evaluation purity, same `accept` commit rules — only the body
//! evaluation differs (a flat `match` over [`Op`] instead of a tree
//! walk). Every numeric decision below is copied from the interpreter
//! verbatim; when in doubt, `machine.rs` is the specification.

use crate::bytecode::{Op, Program};
use gabm_fas::compile::{Func1, Func2};
use gabm_fas::dual::{Dual, MAX_TANGENTS};
use gabm_fas::machine::{sample_history, DC_PSEUDO_DT};
use gabm_sim::devices::{BehavioralModel, EvalCtx};
use std::collections::VecDeque;

/// An executable VM instance of a compiled [`Program`].
#[derive(Debug, Clone)]
pub struct FasVm {
    prog: Program,
    params: Vec<f64>,
    // Committed state (last accepted time point) — mirrors FasMachine.
    committed_vars: Vec<f64>,
    committed_dt_args: Vec<f64>,
    committed_idt_args: Vec<f64>,
    committed_idt_integral: Vec<f64>,
    history: Vec<VecDeque<(f64, f64)>>,
    max_td_seen: f64,
    scratch: Scratch,
}

/// Reusable evaluation buffers: the register files plus the same
/// per-pass result vectors the interpreter keeps.
#[derive(Debug, Clone, Default)]
struct Scratch {
    regs: Vec<f64>,
    regs_dual: Vec<Dual>,
    vars: Vec<f64>,
    vars_dual: Vec<Dual>,
    assigned: Vec<bool>,
    imposed: Vec<f64>,
    imposed_dual: Vec<Dual>,
    dt_args: Vec<f64>,
    dt_seen: Vec<bool>,
    idt_args: Vec<f64>,
    idt_seen: Vec<bool>,
}

impl Scratch {
    fn reset(&mut self, p: &Program) {
        self.regs.clear();
        self.regs.resize(p.n_regs, 0.0);
        self.regs_dual.clear();
        self.regs_dual.resize(p.n_regs, Dual::constant(0.0));
        self.vars.clear();
        self.vars.resize(p.var_names.len(), 0.0);
        self.vars_dual.clear();
        self.vars_dual
            .resize(p.var_names.len(), Dual::constant(0.0));
        self.assigned.clear();
        self.assigned.resize(p.var_names.len(), false);
        self.imposed.clear();
        self.imposed.resize(p.pins.len(), 0.0);
        self.imposed_dual.clear();
        self.imposed_dual.resize(p.pins.len(), Dual::constant(0.0));
        self.dt_args.clear();
        self.dt_args.resize(p.n_dt, 0.0);
        self.dt_seen.clear();
        self.dt_seen.resize(p.n_dt, false);
        self.idt_args.clear();
        self.idt_args.resize(p.n_idt, 0.0);
        self.idt_seen.clear();
        self.idt_seen.resize(p.n_idt, false);
    }
}

fn dt_effective(ctx: &EvalCtx) -> f64 {
    if ctx.mode_dc || ctx.dt <= 0.0 {
        DC_PSEUDO_DT
    } else {
        ctx.dt
    }
}

/// The per-opcode execution histogram costs one branch per dispatched
/// instruction, so it is double-gated: tracing must be on *and* the
/// `GABM_TRACE_OPCODES` environment variable set (read once).
fn opcode_histogram_enabled() -> bool {
    static WANTED: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    gabm_trace::enabled()
        && *WANTED.get_or_init(|| {
            std::env::var("GABM_TRACE_OPCODES").is_ok_and(|v| !v.is_empty() && v != "0")
        })
}

impl FasVm {
    pub(crate) fn new(prog: Program, params: Vec<f64>) -> Self {
        let n_vars = prog.var_names.len();
        let n_dt = prog.n_dt;
        let n_idt = prog.n_idt;
        let n_delayt = prog.n_delayt;
        FasVm {
            prog,
            params,
            committed_vars: vec![0.0; n_vars],
            committed_dt_args: vec![0.0; n_dt],
            committed_idt_args: vec![0.0; n_idt],
            committed_idt_integral: vec![0.0; n_idt],
            history: vec![VecDeque::new(); n_delayt],
            max_td_seen: 0.0,
            scratch: Scratch::default(),
        }
    }

    /// The compiled program this VM runs.
    pub fn program(&self) -> &Program {
        &self.prog
    }

    /// Current value of a named parameter.
    pub fn param(&self, name: &str) -> Option<f64> {
        self.prog
            .params
            .iter()
            .position(|(n, _)| n == name)
            .map(|i| self.params[i])
    }

    /// Committed value of a named variable (test/diagnostic hook).
    pub fn committed_var(&self, name: &str) -> Option<f64> {
        self.prog
            .var_names
            .iter()
            .position(|n| n == name)
            .map(|i| self.committed_vars[i])
    }

    /// One scalar pass over the bytecode. Results land in the scratch
    /// buffers; returns the largest `delayt` horizon seen.
    #[allow(clippy::too_many_lines)]
    fn run_scalar(&mut self, ctx: &EvalCtx, pin_v: &[f64]) -> f64 {
        let mut s = std::mem::take(&mut self.scratch);
        s.reset(&self.prog);
        let ops = &self.prog.ops;
        let consts = &self.prog.consts;
        let dt_eff = dt_effective(ctx);
        let histo = opcode_histogram_enabled();
        let mut op_counts = [0u32; Op::KINDS];
        let mut max_td = 0.0f64;
        let mut pc = 0usize;
        while pc < ops.len() {
            let op = ops[pc];
            pc += 1;
            if histo {
                op_counts[op.kind()] += 1;
            }
            match op {
                Op::Const { dst, k } => s.regs[dst as usize] = consts[k as usize],
                Op::LoadPin { dst, pin } => s.regs[dst as usize] = pin_v[pin as usize],
                Op::LoadParam { dst, p } => s.regs[dst as usize] = self.params[p as usize],
                Op::LoadScratch { dst, var } => s.regs[dst as usize] = s.vars[var as usize],
                Op::LoadCommitted { dst, var } => {
                    s.regs[dst as usize] = self.committed_vars[var as usize];
                }
                Op::LoadTime { dst } => s.regs[dst as usize] = ctx.time,
                Op::LoadTemp { dst } => s.regs[dst as usize] = ctx.temperature,
                Op::LoadTimeStep { dst } => s.regs[dst as usize] = dt_eff,
                Op::Neg { dst, a } => s.regs[dst as usize] = -s.regs[a as usize],
                Op::Add { dst, a, b } => {
                    s.regs[dst as usize] = s.regs[a as usize] + s.regs[b as usize];
                }
                Op::Sub { dst, a, b } => {
                    s.regs[dst as usize] = s.regs[a as usize] - s.regs[b as usize];
                }
                Op::Mul { dst, a, b } => {
                    s.regs[dst as usize] = s.regs[a as usize] * s.regs[b as usize];
                }
                Op::Div { dst, a, b } => {
                    s.regs[dst as usize] = s.regs[a as usize] / s.regs[b as usize];
                }
                Op::Call1 { dst, f, a } => s.regs[dst as usize] = f.apply(s.regs[a as usize]),
                Op::Call2 { dst, f, a, b } => {
                    s.regs[dst as usize] = f.apply(s.regs[a as usize], s.regs[b as usize]);
                }
                Op::Limit { dst, x, lo, hi } => {
                    // Interpreter scalar lane: clamp via max/min.
                    s.regs[dst as usize] = s.regs[x as usize]
                        .max(s.regs[lo as usize])
                        .min(s.regs[hi as usize]);
                }
                Op::Dt { dst, inst, a } => {
                    let v = s.regs[a as usize];
                    s.dt_args[inst as usize] = v;
                    s.dt_seen[inst as usize] = true;
                    s.regs[dst as usize] = if ctx.mode_dc {
                        0.0
                    } else {
                        (v - self.committed_dt_args[inst as usize]) / dt_eff
                    };
                }
                Op::DelayT { dst, inst, var, td } => {
                    let tdv = s.regs[td as usize].max(0.0);
                    max_td = max_td.max(tdv);
                    s.regs[dst as usize] = if ctx.mode_dc {
                        self.committed_vars[var as usize]
                    } else {
                        let target = ctx.time - tdv;
                        sample_history(&self.history[inst as usize], target)
                            .unwrap_or(self.committed_vars[var as usize])
                    };
                }
                Op::Idt { dst, inst, a } => {
                    let v = s.regs[a as usize];
                    s.idt_args[inst as usize] = v;
                    s.idt_seen[inst as usize] = true;
                    s.regs[dst as usize] = if ctx.mode_dc {
                        0.0
                    } else {
                        // Committed integral extended by the current half
                        // step (trapezoidal) — note ctx.dt, not dt_eff.
                        self.committed_idt_integral[inst as usize]
                            + 0.5 * ctx.dt * (v + self.committed_idt_args[inst as usize])
                    };
                }
                Op::StoreVar { var, src } => {
                    s.vars[var as usize] = s.regs[src as usize];
                    s.assigned[var as usize] = true;
                }
                Op::Impose { pin, src } => s.imposed[pin as usize] += s.regs[src as usize],
                Op::Select {
                    dst,
                    op,
                    a,
                    b,
                    t,
                    f,
                } => {
                    s.regs[dst as usize] = if op.apply(s.regs[a as usize], s.regs[b as usize]) {
                        s.regs[t as usize]
                    } else {
                        s.regs[f as usize]
                    };
                }
                Op::Jump { target } => pc = target as usize,
                Op::JumpIfNot { op, a, b, target } => {
                    if !op.apply(s.regs[a as usize], s.regs[b as usize]) {
                        pc = target as usize;
                    }
                }
                Op::JumpIfModeNot { dc, target } => {
                    if ctx.mode_dc != dc {
                        pc = target as usize;
                    }
                }
            }
        }
        if histo {
            for (kind, &n) in op_counts.iter().enumerate() {
                if n > 0 {
                    gabm_trace::add(&format!("fasvm.op.{}", Op::kind_name(kind)), u64::from(n));
                }
            }
        }
        self.scratch = s;
        max_td
    }

    /// One dual-number pass: pin voltages seed tangent lanes, imposes
    /// accumulate value + Jacobian row in a single walk. The numeric
    /// special cases (min/max chains, `limit` ordering, `pow`
    /// derivatives, tangent scaling of `dt`/`idt`) replicate the
    /// interpreter's dual evaluator exactly.
    #[allow(clippy::too_many_lines)]
    fn run_dual(&mut self, ctx: &EvalCtx, pin_v: &[f64]) {
        let mut s = std::mem::take(&mut self.scratch);
        s.reset(&self.prog);
        let ops = &self.prog.ops;
        let consts = &self.prog.consts;
        let dt_eff = dt_effective(ctx);
        let mut pc = 0usize;
        while pc < ops.len() {
            let op = ops[pc];
            pc += 1;
            match op {
                Op::Const { dst, k } => {
                    s.regs_dual[dst as usize] = Dual::constant(consts[k as usize]);
                }
                Op::LoadPin { dst, pin } => {
                    s.regs_dual[dst as usize] = Dual::variable(pin_v[pin as usize], pin as usize);
                }
                Op::LoadParam { dst, p } => {
                    s.regs_dual[dst as usize] = Dual::constant(self.params[p as usize]);
                }
                Op::LoadScratch { dst, var } => {
                    s.regs_dual[dst as usize] = s.vars_dual[var as usize];
                }
                Op::LoadCommitted { dst, var } => {
                    s.regs_dual[dst as usize] = Dual::constant(self.committed_vars[var as usize]);
                }
                Op::LoadTime { dst } => s.regs_dual[dst as usize] = Dual::constant(ctx.time),
                Op::LoadTemp { dst } => {
                    s.regs_dual[dst as usize] = Dual::constant(ctx.temperature);
                }
                Op::LoadTimeStep { dst } => s.regs_dual[dst as usize] = Dual::constant(dt_eff),
                Op::Neg { dst, a } => s.regs_dual[dst as usize] = -s.regs_dual[a as usize],
                Op::Add { dst, a, b } => {
                    s.regs_dual[dst as usize] = s.regs_dual[a as usize] + s.regs_dual[b as usize];
                }
                Op::Sub { dst, a, b } => {
                    s.regs_dual[dst as usize] = s.regs_dual[a as usize] - s.regs_dual[b as usize];
                }
                Op::Mul { dst, a, b } => {
                    s.regs_dual[dst as usize] = s.regs_dual[a as usize] * s.regs_dual[b as usize];
                }
                Op::Div { dst, a, b } => {
                    s.regs_dual[dst as usize] = s.regs_dual[a as usize] / s.regs_dual[b as usize];
                }
                Op::Call1 { dst, f, a } => {
                    let av = s.regs_dual[a as usize];
                    let x = av.v;
                    let (value, slope) = match f {
                        Func1::Sin => (x.sin(), x.cos()),
                        Func1::Cos => (x.cos(), -x.sin()),
                        Func1::Exp => {
                            let e = x.exp();
                            (e, e)
                        }
                        Func1::Ln => (x.ln(), 1.0 / x),
                        Func1::Abs => (x.abs(), if x >= 0.0 { 1.0 } else { -1.0 }),
                        Func1::Sqrt => {
                            let r = x.sqrt();
                            (r, if r > 0.0 { 0.5 / r } else { 0.0 })
                        }
                        Func1::Tanh => {
                            let t = x.tanh();
                            (t, 1.0 - t * t)
                        }
                        Func1::Atan => (x.atan(), 1.0 / (1.0 + x * x)),
                    };
                    s.regs_dual[dst as usize] = av.chain(value, slope);
                }
                Op::Call2 { dst, f, a, b } => {
                    let av = s.regs_dual[a as usize];
                    let bv = s.regs_dual[b as usize];
                    s.regs_dual[dst as usize] = match f {
                        Func2::Min => {
                            if av.v <= bv.v {
                                av
                            } else {
                                bv
                            }
                        }
                        Func2::Max => {
                            if av.v >= bv.v {
                                av
                            } else {
                                bv
                            }
                        }
                        Func2::Pow => {
                            let value = av.v.powf(bv.v);
                            // d(a^b) = a^b (b' ln a + b a'/a); the
                            // ln-term only exists for positive bases.
                            let da = if av.v != 0.0 {
                                value * bv.v / av.v
                            } else {
                                0.0
                            };
                            let db = if av.v > 0.0 { value * av.v.ln() } else { 0.0 };
                            let mut d = [0.0; MAX_TANGENTS];
                            #[allow(clippy::needless_range_loop)]
                            for i in 0..MAX_TANGENTS {
                                d[i] = da * av.d[i] + db * bv.d[i];
                            }
                            Dual { v: value, d }
                        }
                    };
                }
                Op::Limit { dst, x, lo, hi } => {
                    let xv = s.regs_dual[x as usize];
                    let lov = s.regs_dual[lo as usize];
                    let hiv = s.regs_dual[hi as usize];
                    // Interpreter dual lane: if-chain, not clamp.
                    s.regs_dual[dst as usize] = if xv.v < lov.v {
                        lov
                    } else if xv.v > hiv.v {
                        hiv
                    } else {
                        xv
                    };
                }
                Op::Dt { dst, inst, a } => {
                    let av = s.regs_dual[a as usize];
                    s.dt_args[inst as usize] = av.v;
                    s.dt_seen[inst as usize] = true;
                    s.regs_dual[dst as usize] = if ctx.mode_dc {
                        Dual::constant(0.0)
                    } else {
                        let value = (av.v - self.committed_dt_args[inst as usize]) / dt_eff;
                        let mut out = av.scale_tangent(1.0 / dt_eff);
                        out.v = value;
                        out
                    };
                }
                Op::DelayT { dst, inst, var, td } => {
                    let tdv = s.regs_dual[td as usize].v.max(0.0);
                    s.regs_dual[dst as usize] = if ctx.mode_dc {
                        Dual::constant(self.committed_vars[var as usize])
                    } else {
                        let target = ctx.time - tdv;
                        Dual::constant(
                            sample_history(&self.history[inst as usize], target)
                                .unwrap_or(self.committed_vars[var as usize]),
                        )
                    };
                }
                Op::Idt { dst, inst, a } => {
                    let av = s.regs_dual[a as usize];
                    s.idt_args[inst as usize] = av.v;
                    s.idt_seen[inst as usize] = true;
                    s.regs_dual[dst as usize] = if ctx.mode_dc {
                        Dual::constant(0.0)
                    } else {
                        let half_dt = 0.5 * ctx.dt;
                        let value = self.committed_idt_integral[inst as usize]
                            + half_dt * (av.v + self.committed_idt_args[inst as usize]);
                        let mut out = av.scale_tangent(half_dt);
                        out.v = value;
                        out
                    };
                }
                Op::StoreVar { var, src } => {
                    let v = s.regs_dual[src as usize];
                    s.vars_dual[var as usize] = v;
                    s.vars[var as usize] = v.v;
                    s.assigned[var as usize] = true;
                }
                Op::Impose { pin, src } => {
                    let v = s.regs_dual[src as usize];
                    let cur = s.imposed_dual[pin as usize];
                    s.imposed_dual[pin as usize] = cur + v;
                    s.imposed[pin as usize] += v.v;
                }
                Op::Select {
                    dst,
                    op,
                    a,
                    b,
                    t,
                    f,
                } => {
                    s.regs_dual[dst as usize] =
                        if op.apply(s.regs_dual[a as usize].v, s.regs_dual[b as usize].v) {
                            s.regs_dual[t as usize]
                        } else {
                            s.regs_dual[f as usize]
                        };
                }
                Op::Jump { target } => pc = target as usize,
                Op::JumpIfNot { op, a, b, target } => {
                    if !op.apply(s.regs_dual[a as usize].v, s.regs_dual[b as usize].v) {
                        pc = target as usize;
                    }
                }
                Op::JumpIfModeNot { dc, target } => {
                    if ctx.mode_dc != dc {
                        pc = target as usize;
                    }
                }
            }
        }
        self.scratch = s;
    }
}

impl BehavioralModel for FasVm {
    fn pin_count(&self) -> usize {
        self.prog.pins.len()
    }

    fn eval(&mut self, ctx: &EvalCtx, pin_voltages: &[f64], currents: &mut [f64]) {
        self.run_scalar(ctx, pin_voltages);
        currents.copy_from_slice(&self.scratch.imposed);
    }

    fn eval_with_jacobian(
        &mut self,
        ctx: &EvalCtx,
        pin_voltages: &[f64],
        currents: &mut [f64],
        jacobian: &mut [f64],
    ) -> bool {
        let n = self.prog.pins.len();
        if n > MAX_TANGENTS {
            return false;
        }
        self.run_dual(ctx, pin_voltages);
        for k in 0..n {
            let imposed = self.scratch.imposed_dual[k];
            currents[k] = imposed.v;
            jacobian[k * n..k * n + n].copy_from_slice(&imposed.d[..n]);
        }
        true
    }

    fn accept(&mut self, ctx: &EvalCtx, pin_voltages: &[f64]) {
        if ctx.mode_dc {
            // Pass 1 — DC semantics: commit the variable values.
            self.run_scalar(ctx, pin_voltages);
            for i in 0..self.committed_vars.len() {
                if self.scratch.assigned[i] {
                    self.committed_vars[i] = self.scratch.vars[i];
                }
            }
            // Pass 2 — shadow transient with the DC pseudo-step: walks
            // the `else` branches of the mode guards so every state
            // instance records its argument, seeding derivatives /
            // integrals / delays with operating-point values.
            let shadow_ctx = EvalCtx {
                mode_dc: false,
                time: 0.0,
                dt: DC_PSEUDO_DT,
                temperature: ctx.temperature,
            };
            self.run_scalar(&shadow_ctx, pin_voltages);
            for i in 0..self.committed_dt_args.len() {
                if self.scratch.dt_seen[i] {
                    self.committed_dt_args[i] = self.scratch.dt_args[i];
                }
            }
            for i in 0..self.committed_idt_args.len() {
                if self.scratch.idt_seen[i] {
                    self.committed_idt_args[i] = self.scratch.idt_args[i];
                    self.committed_idt_integral[i] = 0.0;
                }
            }
            // Seed delayed-variable histories at t = 0, keyed by the
            // precomputed instance → variable table.
            for (inst, hist) in self.history.iter_mut().enumerate() {
                hist.clear();
                if let Some(var) = self.prog.delayt_vars[inst] {
                    hist.push_back((0.0, self.committed_vars[var]));
                }
            }
        } else {
            let max_td = self.run_scalar(ctx, pin_voltages);
            for i in 0..self.committed_vars.len() {
                if self.scratch.assigned[i] {
                    self.committed_vars[i] = self.scratch.vars[i];
                }
            }
            for i in 0..self.committed_dt_args.len() {
                if self.scratch.dt_seen[i] {
                    self.committed_dt_args[i] = self.scratch.dt_args[i];
                }
            }
            for i in 0..self.committed_idt_args.len() {
                if self.scratch.idt_seen[i] {
                    let v = self.scratch.idt_args[i];
                    self.committed_idt_integral[i] +=
                        0.5 * ctx.dt * (v + self.committed_idt_args[i]);
                    self.committed_idt_args[i] = v;
                }
            }
            self.max_td_seen = self.max_td_seen.max(max_td);
            // Append to delayed histories and prune.
            let keep_after = ctx.time - 2.0 * self.max_td_seen - ctx.dt;
            for (inst, hist) in self.history.iter_mut().enumerate() {
                if let Some(var) = self.prog.delayt_vars[inst] {
                    hist.push_back((ctx.time, self.committed_vars[var]));
                    while hist.len() > 2 && hist.front().map(|h| h.0) < Some(keep_after) {
                        hist.pop_front();
                    }
                }
            }
        }
    }
}
