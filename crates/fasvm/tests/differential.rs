//! Differential suite: the bytecode VM must agree with the tree-walking
//! interpreter — values, Jacobians and committed state — on every model
//! either can run. The interpreter is the specification; any divergence
//! beyond ulp noise is a VM bug.
//!
//! Coverage comes from three sources:
//! - ≥500 generated models over the full FAS vocabulary
//!   (`gabm_fas::testgen::rich_model_source`),
//! - every `tests/fixtures/*.fas` file that compiles,
//! - the four §3.3 paper constructs via the FAS code generator.

use gabm_core::constructs::{InputStageSpec, OutputStageSpec, PowerSupplySpec, SlewRateSpec};
use gabm_fas::compile::CompiledModel;
use gabm_fas::testgen;
use gabm_fasvm::compile_program;
use gabm_numeric::rng::Rng;
use gabm_sim::devices::{BehavioralModel, EvalCtx};
use std::collections::BTreeMap;

/// Ulp-scale agreement: identical bits (covers NaN and signed zeros,
/// which both backends must produce in the same places) or a relative
/// error within a few epsilon.
fn close(a: f64, b: f64) -> bool {
    if a.to_bits() == b.to_bits() {
        return true;
    }
    if a.is_nan() && b.is_nan() {
        return true;
    }
    let scale = a.abs().max(b.abs());
    (a - b).abs() <= 4.0 * f64::EPSILON * scale
}

fn assert_close(a: f64, b: f64, what: &str, src: &str) {
    assert!(
        close(a, b),
        "{what}: interp={a:e} vm={b:e} (diff {:e})\nmodel:\n{src}",
        (a - b).abs()
    );
}

/// Runs both backends through a DC solve plus a short transient and
/// checks currents, Jacobians and committed variables at every point.
fn check_model(model: &CompiledModel, src: &str, rng: &mut Rng) {
    let overrides = BTreeMap::new();
    let mut interp = model.instantiate(&overrides).expect("interp instantiate");
    let prog = compile_program(model).expect("bytecode compile");
    let mut vm = prog.instantiate(&overrides).expect("vm instantiate");
    let n = model.pins().len();
    assert_eq!(vm.pin_count(), n);

    let mut volts = vec![0.0f64; n];
    let mut ci = vec![0.0f64; n];
    let mut cv = vec![0.0f64; n];
    let mut ji = vec![0.0f64; n * n];
    let mut jv = vec![0.0f64; n * n];

    let compare_point = |interp: &mut gabm_fas::FasMachine,
                         vm: &mut gabm_fasvm::FasVm,
                         ctx: &EvalCtx,
                         volts: &[f64],
                         ci: &mut [f64],
                         cv: &mut [f64],
                         ji: &mut [f64],
                         jv: &mut [f64]| {
        interp.eval(ctx, volts, ci);
        vm.eval(ctx, volts, cv);
        for k in 0..n {
            assert_close(ci[k], cv[k], &format!("current[{k}]"), src);
        }
        let oki = interp.eval_with_jacobian(ctx, volts, ci, ji);
        let okv = vm.eval_with_jacobian(ctx, volts, cv, jv);
        assert_eq!(oki, okv, "jacobian support must match\n{src}");
        if oki {
            for k in 0..n {
                assert_close(ci[k], cv[k], &format!("dual current[{k}]"), src);
            }
            for k in 0..n * n {
                assert_close(ji[k], jv[k], &format!("jacobian[{k}]"), src);
            }
        }
    };

    // DC operating point.
    let dc = EvalCtx {
        mode_dc: true,
        time: 0.0,
        dt: 0.0,
        temperature: 300.0,
    };
    for v in volts.iter_mut() {
        *v = rng.range(-2.0, 2.0);
    }
    compare_point(
        &mut interp,
        &mut vm,
        &dc,
        &volts,
        &mut ci,
        &mut cv,
        &mut ji,
        &mut jv,
    );
    interp.accept(&dc, &volts);
    vm.accept(&dc, &volts);
    for name in model.var_names() {
        let a = interp.committed_var(name).expect("interp var");
        let b = vm.committed_var(name).expect("vm var");
        assert_close(a, b, &format!("dc committed {name}"), src);
    }

    // Short transient with varying voltages.
    let dt = 1.0e-4;
    for step in 1..=6 {
        let ctx = EvalCtx {
            mode_dc: false,
            time: step as f64 * dt,
            dt,
            temperature: 300.0,
        };
        for v in volts.iter_mut() {
            *v += rng.symmetric() * 0.5;
        }
        compare_point(
            &mut interp,
            &mut vm,
            &ctx,
            &volts,
            &mut ci,
            &mut cv,
            &mut ji,
            &mut jv,
        );
        interp.accept(&ctx, &volts);
        vm.accept(&ctx, &volts);
        for name in model.var_names() {
            let a = interp.committed_var(name).expect("interp var");
            let b = vm.committed_var(name).expect("vm var");
            assert_close(a, b, &format!("t{step} committed {name}"), src);
        }
    }
}

/// ≥500 generated models over the full vocabulary.
#[test]
fn generated_models_agree() {
    let mut gen_rng = Rng::new(0xD1FF_0001);
    let mut sim_rng = Rng::new(0xD1FF_0002);
    for i in 0..500 {
        let src = testgen::rich_model_source(&mut gen_rng);
        let model = gabm_fas::compile(&src)
            .unwrap_or_else(|e| panic!("case {i} does not compile: {e}\n{src}"));
        check_model(&model, &src, &mut sim_rng);
    }
}

/// The straight-line fuzz pool, too (different statement shapes).
#[test]
fn straight_line_models_agree() {
    let mut gen_rng = Rng::new(0xD1FF_0003);
    let mut sim_rng = Rng::new(0xD1FF_0004);
    for _ in 0..100 {
        let src = testgen::straight_line_source(&mut gen_rng);
        let model = gabm_fas::compile(&src).expect("straight-line model compiles");
        check_model(&model, &src, &mut sim_rng);
    }
}

/// Every repository fixture that compiles.
#[test]
fn fixture_models_agree() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/fixtures");
    let mut rng = Rng::new(0xD1FF_0005);
    let mut checked = 0;
    let mut entries: Vec<_> = std::fs::read_dir(dir)
        .expect("fixtures dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "fas"))
        .collect();
    entries.sort();
    for path in entries {
        let src = std::fs::read_to_string(&path).expect("read fixture");
        // Lint fixtures include intentionally broken sources; the
        // differential contract only covers models the front end
        // accepts.
        let Ok(model) = gabm_fas::compile(&src) else {
            continue;
        };
        check_model(&model, &src, &mut rng);
        checked += 1;
    }
    assert!(checked >= 3, "only {checked} fixtures compiled");
}

/// The four §3.3 constructs, through the real code generator.
#[test]
fn paper_constructs_agree() {
    use gabm_codegen::{generate, Backend};
    let diagrams = [
        InputStageSpec::new("in", 1.0e-6, 5.0e-12)
            .diagram()
            .expect("input stage"),
        OutputStageSpec::new("out", 1.0e-3)
            .diagram()
            .expect("output stage"),
        PowerSupplySpec::new("vdd", "vss", 1.0e-5, 1.0e-6, 2)
            .diagram()
            .expect("power supply"),
        SlewRateSpec::new(2.0e6, 2.0e6)
            .diagram()
            .expect("slew rate"),
    ];
    let mut rng = Rng::new(0xD1FF_0006);
    let mut checked = 0;
    for d in &diagrams {
        let code = generate(d, Backend::Fas).expect("codegen");
        // The slew-rate construct exposes no electrical pins, and the
        // FAS front end rejects an empty pin list — for both backends
        // alike. The differential contract only covers models the
        // front end accepts.
        let Ok(model) = gabm_fas::compile(&code.text) else {
            continue;
        };
        check_model(&model, &code.text, &mut rng);
        checked += 1;
    }
    assert!(checked >= 3, "only {checked} constructs compiled");
}
