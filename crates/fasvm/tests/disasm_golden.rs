//! Golden test for the bytecode disassembly format.
//!
//! `gabm compile --disasm` and `Program::disasm` promise a stable,
//! diffable listing; this test pins it for a model that exercises the
//! whole lowering pipeline (constant folding, select conversion, state
//! ops, register reuse). Regenerate with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p gabm-fasvm --test disasm_golden
//! ```

use gabm_fasvm::compile_program;

const SOURCE: &str = "\
model golden pin (inp, outp) param (g=1e-3, tau=2.0, vmax=5.0)
analog
make vin = volt.value(inp)
make gain2 = g * (2 + 3)
make vlim = limit(vin * gain2, -vmax, vmax)
if (mode=dc) then
make vs = vlim
else
make vs = state.dt(vlim) * tau
endif
if (vin >= 0) then
make sign = 1
else
make sign = 0 - 1
endif
make curr.on(outp) = vs * sign
make curr.on(inp) = 0 - vs * sign
endanalog
endmodel
";

#[test]
fn disasm_listing_is_stable() {
    let model = gabm_fas::compile(SOURCE).expect("golden model compiles");
    let prog = compile_program(&model).expect("bytecode compiles");
    let listing = prog.disasm();

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/disasm.txt");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(path, &listing).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(path)
        .expect("golden file missing — run with UPDATE_GOLDEN=1 to create it");
    assert_eq!(
        listing, expected,
        "disassembly drifted from tests/golden/disasm.txt;\n\
         if the change is intentional, regenerate with UPDATE_GOLDEN=1"
    );
}
