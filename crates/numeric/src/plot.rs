//! Terminal oscillograms: render waveforms as ASCII plots.
//!
//! Used by the benchmark harness to display the paper's Fig. 7 directly in
//! the terminal — several traces share one time axis, each drawn with its
//! own glyph.

use crate::waveform::Waveform;
use crate::NumericError;

/// Options for [`ascii_plot`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlotOptions {
    /// Character columns of the plot area.
    pub width: usize,
    /// Character rows of the plot area.
    pub height: usize,
    /// Fixed y-range; `None` = auto-scale over all traces.
    pub y_range: Option<(f64, f64)>,
}

impl Default for PlotOptions {
    fn default() -> Self {
        PlotOptions {
            width: 72,
            height: 16,
            y_range: None,
        }
    }
}

/// Renders one or more waveforms as a shared-axis ASCII plot.
///
/// Traces are drawn with the glyphs `1`, `2`, `3`, … in argument order;
/// where traces overlap the later one wins. A legend and the axis ranges
/// are appended.
///
/// # Errors
///
/// * [`NumericError::Empty`] if no traces are given or any trace is empty.
///
/// # Example
///
/// ```
/// use gabm_numeric::plot::{ascii_plot, PlotOptions};
/// use gabm_numeric::Waveform;
///
/// # fn main() -> Result<(), gabm_numeric::NumericError> {
/// let w = Waveform::from_fn(0.0, 1.0, 100, |t| t);
/// let s = ascii_plot(&[("ramp", &w)], &PlotOptions::default())?;
/// assert!(s.contains("ramp"));
/// # Ok(())
/// # }
/// ```
pub fn ascii_plot(
    traces: &[(&str, &Waveform)],
    options: &PlotOptions,
) -> Result<String, NumericError> {
    if traces.is_empty() || traces.iter().any(|(_, w)| w.is_empty()) {
        return Err(NumericError::Empty);
    }
    let width = options.width.max(8);
    let height = options.height.max(3);
    let t0 = traces
        .iter()
        .map(|(_, w)| w.t_start())
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .fold(f64::INFINITY, f64::min);
    let t1 = traces
        .iter()
        .map(|(_, w)| w.t_end())
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .fold(f64::NEG_INFINITY, f64::max);
    let (y_lo, y_hi) = match options.y_range {
        Some(r) => r,
        None => {
            let lo = traces
                .iter()
                .map(|(_, w)| w.min())
                .fold(f64::INFINITY, f64::min);
            let hi = traces
                .iter()
                .map(|(_, w)| w.max())
                .fold(f64::NEG_INFINITY, f64::max);
            if lo == hi {
                (lo - 1.0, hi + 1.0)
            } else {
                // 5 % headroom.
                let pad = 0.05 * (hi - lo);
                (lo - pad, hi + pad)
            }
        }
    };
    let span_t = (t1 - t0).max(f64::MIN_POSITIVE);
    let span_y = (y_hi - y_lo).max(f64::MIN_POSITIVE);

    let mut grid = vec![vec![' '; width]; height];
    // Zero axis if visible.
    if y_lo < 0.0 && y_hi > 0.0 {
        let row = ((y_hi / span_y) * (height - 1) as f64).round() as usize;
        if row < height {
            for cell in &mut grid[row] {
                *cell = '·';
            }
        }
    }
    for (idx, (_, w)) in traces.iter().enumerate() {
        let glyph = char::from_digit((idx + 1) as u32 % 36, 36).unwrap_or('#');
        #[allow(clippy::needless_range_loop)]
        for col in 0..width {
            let t = t0 + span_t * col as f64 / (width - 1) as f64;
            let v = w.value_at(t)?;
            let frac = ((y_hi - v) / span_y).clamp(0.0, 1.0);
            let row = (frac * (height - 1) as f64).round() as usize;
            grid[row.min(height - 1)][col] = glyph;
        }
    }

    let mut out = String::new();
    out.push_str(&format!("{y_hi:>11.3e} ┐\n"));
    for row in grid {
        out.push_str("            │");
        out.extend(row);
        out.push('\n');
    }
    out.push_str(&format!("{y_lo:>11.3e} ┘"));
    out.push_str(&format!("  t = {t0:.3e} … {t1:.3e} s\n",));
    for (idx, (name, _)) in traces.iter().enumerate() {
        let glyph = char::from_digit((idx + 1) as u32 % 36, 36).unwrap_or('#');
        out.push_str(&format!("            {glyph} = {name}\n"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plots_single_trace() {
        let w = Waveform::from_fn(0.0, 1.0, 50, |t| (2.0 * std::f64::consts::PI * t).sin());
        let s = ascii_plot(&[("sine", &w)], &PlotOptions::default()).unwrap();
        assert!(s.contains('1'));
        assert!(s.contains("sine"));
        // Zero axis drawn.
        assert!(s.contains('·'));
    }

    #[test]
    fn plots_multiple_traces() {
        let a = Waveform::from_fn(0.0, 1.0, 50, |t| t);
        let b = Waveform::from_fn(0.0, 1.0, 50, |t| 1.0 - t);
        let s = ascii_plot(&[("up", &a), ("down", &b)], &PlotOptions::default()).unwrap();
        assert!(s.contains('1'));
        assert!(s.contains('2'));
        assert!(s.contains("up"));
        assert!(s.contains("down"));
    }

    #[test]
    fn respects_fixed_range_and_size() {
        let w = Waveform::from_fn(0.0, 1.0, 10, |_| 0.5);
        let opts = PlotOptions {
            width: 20,
            height: 5,
            y_range: Some((0.0, 1.0)),
        };
        let s = ascii_plot(&[("flat", &w)], &opts).unwrap();
        // 5 plot rows + header + footer + legend.
        assert_eq!(s.lines().count(), 8);
        assert!(s.contains("1.000e0"));
    }

    #[test]
    fn empty_inputs_rejected() {
        assert!(ascii_plot(&[], &PlotOptions::default()).is_err());
        let empty = Waveform::new();
        assert!(ascii_plot(&[("e", &empty)], &PlotOptions::default()).is_err());
    }

    #[test]
    fn constant_trace_does_not_divide_by_zero() {
        let w = Waveform::from_fn(0.0, 1.0, 5, |_| 3.0);
        let s = ascii_plot(&[("c", &w)], &PlotOptions::default()).unwrap();
        assert!(s.contains('1'));
    }
}
