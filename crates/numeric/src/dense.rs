//! Dense matrices generic over a [`Scalar`].
//!
//! The modified nodal analysis systems assembled by `gabm-sim` are small
//! (tens of unknowns), so a row-major dense matrix is the default backing
//! store; [`crate::sparse`] and [`crate::splu`] exist for the larger systems
//! exercised by the scalability ablations.

use crate::{NumericError, Scalar};
use std::fmt;

/// A dense, row-major matrix over a [`Scalar`] field.
///
/// # Example
///
/// ```
/// use gabm_numeric::DenseMatrix;
///
/// let mut m: DenseMatrix<f64> = DenseMatrix::zeros(2, 2);
/// m[(0, 0)] = 1.0;
/// m.add_at(0, 0, 2.0);
/// assert_eq!(m[(0, 0)], 3.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix<T = f64> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Scalar> DenseMatrix<T> {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseMatrix {
            rows,
            cols,
            data: vec![T::zero(); rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = DenseMatrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = T::one();
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::Empty`] for an empty input and
    /// [`NumericError::InvalidInput`] if rows have differing lengths.
    pub fn from_rows(rows: &[&[T]]) -> Result<Self, NumericError> {
        if rows.is_empty() || rows[0].is_empty() {
            return Err(NumericError::Empty);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            if r.len() != cols {
                return Err(NumericError::InvalidInput(format!(
                    "ragged rows: expected {cols} columns, found {}",
                    r.len()
                )));
            }
            data.extend_from_slice(r);
        }
        Ok(DenseMatrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns `true` if the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Sets every entry back to zero, keeping the allocation.
    ///
    /// Called once per Newton iteration by the MNA assembler.
    pub fn clear(&mut self) {
        for v in &mut self.data {
            *v = T::zero();
        }
    }

    /// Adds `value` to the entry at `(row, col)` — the fundamental "stamp"
    /// operation of modified nodal analysis.
    ///
    /// # Panics
    ///
    /// Panics if the position is out of bounds.
    pub fn add_at(&mut self, row: usize, col: usize, value: T) {
        let idx = self.index(row, col);
        let cur = self.data[idx];
        self.data[idx] = cur + value;
    }

    /// Matrix–vector product `A·x`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::DimensionMismatch`] if `x.len() != cols`.
    pub fn mul_vec(&self, x: &[T]) -> Result<Vec<T>, NumericError> {
        if x.len() != self.cols {
            return Err(NumericError::DimensionMismatch {
                expected: self.cols,
                found: x.len(),
            });
        }
        let mut y = vec![T::zero(); self.rows];
        #[allow(clippy::needless_range_loop)]
        for i in 0..self.rows {
            let mut acc = T::zero();
            let base = i * self.cols;
            for j in 0..self.cols {
                acc = acc + self.data[base + j] * x[j];
            }
            y[i] = acc;
        }
        Ok(y)
    }

    /// Matrix–matrix product `A·B`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::DimensionMismatch`] if the inner dimensions do
    /// not agree.
    pub fn mul_mat(&self, b: &DenseMatrix<T>) -> Result<DenseMatrix<T>, NumericError> {
        if self.cols != b.rows {
            return Err(NumericError::DimensionMismatch {
                expected: self.cols,
                found: b.rows,
            });
        }
        let mut out = DenseMatrix::zeros(self.rows, b.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a_ik = self[(i, k)];
                if a_ik == T::zero() {
                    continue;
                }
                for j in 0..b.cols {
                    out.add_at(i, j, a_ik * b[(k, j)]);
                }
            }
        }
        Ok(out)
    }

    /// Transposed copy of the matrix.
    pub fn transpose(&self) -> DenseMatrix<T> {
        let mut out = DenseMatrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Infinity norm (maximum absolute row sum).
    pub fn norm_inf(&self) -> f64 {
        (0..self.rows)
            .map(|i| {
                (0..self.cols)
                    .map(|j| self[(i, j)].magnitude())
                    .sum::<f64>()
            })
            .fold(0.0, f64::max)
    }

    /// Borrow the underlying row-major data.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    fn index(&self, row: usize, col: usize) -> usize {
        assert!(
            row < self.rows && col < self.cols,
            "index ({row}, {col}) out of bounds for {}x{} matrix",
            self.rows,
            self.cols
        );
        row * self.cols + col
    }
}

impl<T: Scalar> std::ops::Index<(usize, usize)> for DenseMatrix<T> {
    type Output = T;
    fn index(&self, (row, col): (usize, usize)) -> &T {
        let idx = self.index(row, col);
        &self.data[idx]
    }
}

impl<T: Scalar> std::ops::IndexMut<(usize, usize)> for DenseMatrix<T> {
    fn index_mut(&mut self, (row, col): (usize, usize)) -> &mut T {
        let idx = self.index(row, col);
        &mut self.data[idx]
    }
}

impl<T: Scalar> fmt::Display for DenseMatrix<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            write!(f, "[")?;
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:?}", self[(i, j)])?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

/// Euclidean norm of a real vector.
pub fn norm2(x: &[f64]) -> f64 {
    x.iter().map(|v| v * v).sum::<f64>().sqrt()
}

/// Infinity norm of a real vector.
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0, |m, v| m.max(v.abs()))
}

/// `y ← y + alpha·x` for real vectors.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Complex64;

    #[test]
    fn zeros_and_identity() {
        let z: DenseMatrix<f64> = DenseMatrix::zeros(2, 3);
        assert_eq!(z.rows(), 2);
        assert_eq!(z.cols(), 3);
        assert!(!z.is_square());
        let i: DenseMatrix<f64> = DenseMatrix::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
        assert!(i.is_square());
    }

    #[test]
    fn from_rows_validates() {
        assert_eq!(
            DenseMatrix::<f64>::from_rows(&[]).unwrap_err(),
            NumericError::Empty
        );
        let ragged = DenseMatrix::from_rows(&[&[1.0, 2.0][..], &[3.0][..]]);
        assert!(matches!(ragged, Err(NumericError::InvalidInput(_))));
    }

    #[test]
    fn stamp_accumulates() {
        let mut m: DenseMatrix<f64> = DenseMatrix::zeros(2, 2);
        m.add_at(1, 1, 2.0);
        m.add_at(1, 1, 3.0);
        assert_eq!(m[(1, 1)], 5.0);
        m.clear();
        assert_eq!(m[(1, 1)], 0.0);
    }

    #[test]
    fn mat_vec() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0][..], &[3.0, 4.0][..]]).unwrap();
        let y = a.mul_vec(&[1.0, 1.0]).unwrap();
        assert_eq!(y, vec![3.0, 7.0]);
        assert!(matches!(
            a.mul_vec(&[1.0]),
            Err(NumericError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn mat_mat_and_transpose() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0][..], &[3.0, 4.0][..]]).unwrap();
        let i: DenseMatrix<f64> = DenseMatrix::identity(2);
        assert_eq!(a.mul_mat(&i).unwrap(), a);
        let t = a.transpose();
        assert_eq!(t[(0, 1)], 3.0);
        assert_eq!(t[(1, 0)], 2.0);
    }

    #[test]
    fn norms() {
        let a = DenseMatrix::from_rows(&[&[1.0, -2.0][..], &[3.0, 4.0][..]]).unwrap();
        assert_eq!(a.norm_inf(), 7.0);
        assert_eq!(norm_inf(&[1.0, -5.0, 2.0]), 5.0);
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, -1.0], &mut y);
        assert_eq!(y, vec![3.0, -1.0]);
    }

    #[test]
    fn complex_matrix_works() {
        let j = Complex64::J;
        let a =
            DenseMatrix::from_rows(&[&[Complex64::ONE, j][..], &[-j, Complex64::ONE][..]]).unwrap();
        let y = a.mul_vec(&[Complex64::ONE, Complex64::ONE]).unwrap();
        assert_eq!(y[0], Complex64::new(1.0, 1.0));
        assert_eq!(y[1], Complex64::new(1.0, -1.0));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_out_of_bounds_panics() {
        let m: DenseMatrix<f64> = DenseMatrix::zeros(1, 1);
        let _ = m[(1, 0)];
    }
}
