//! Numerical substrate for the `gabm` workspace.
//!
//! This crate provides everything the analogue simulator (`gabm-sim`) and the
//! characterization tool (`gabm-charac`) need from numerical mathematics:
//!
//! * [`dense`] — dense matrices generic over a [`Scalar`] (real or complex);
//! * [`lu`] — LU factorization with partial pivoting, again generic, used for
//!   both the real Newton iterations of transient analysis and the complex
//!   solves of AC small-signal analysis;
//! * [`sparse`] — compressed sparse column matrices with a triplet builder;
//! * [`splu`] — a left-looking (Gilbert–Peierls) sparse LU with partial
//!   pivoting for larger modified-nodal-analysis systems;
//! * [`complex`] — a self-contained [`Complex64`] (no external dependency);
//! * [`newton`] — SPICE-style convergence criteria and damping helpers;
//! * [`integrate`] — backward-Euler / trapezoidal / Gear-2 integration
//!   coefficients and a local-truncation-error step controller;
//! * [`interp`] — linear and monotone cubic interpolation;
//! * [`waveform`] — sampled signals with arithmetic;
//! * [`measure`] — waveform measurements (crossings, rise time, overshoot,
//!   RMS, propagation delay, …) used by the extraction rigs.
//!
//! # Example
//!
//! ```
//! use gabm_numeric::dense::DenseMatrix;
//! use gabm_numeric::lu::LuFactor;
//!
//! # fn main() -> Result<(), gabm_numeric::NumericError> {
//! let a = DenseMatrix::from_rows(&[&[4.0, 1.0][..], &[1.0, 3.0][..]])?;
//! let lu = LuFactor::new(&a)?;
//! let x = lu.solve(&[1.0, 2.0])?;
//! assert!((4.0 * x[0] + x[1] - 1.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

pub mod complex;
pub mod dense;
pub mod integrate;
pub mod interp;
pub mod lu;
pub mod measure;
pub mod newton;
pub mod plot;
pub mod rng;
pub mod sparse;
pub mod splu;
pub mod waveform;

pub use complex::Complex64;
pub use dense::DenseMatrix;
pub use lu::LuFactor;
pub use rng::Rng;
pub use sparse::{SparseMatrix, TripletBuilder};
pub use splu::SparseLu;
pub use waveform::Waveform;

use std::fmt;

/// Errors produced by the numerical routines.
#[derive(Debug, Clone, PartialEq)]
pub enum NumericError {
    /// A matrix was singular (or numerically singular) at the given pivot
    /// position.
    Singular {
        /// Row/column index of the failed pivot.
        pivot: usize,
    },
    /// Matrix or vector dimensions do not agree.
    DimensionMismatch {
        /// What was expected.
        expected: usize,
        /// What was provided.
        found: usize,
    },
    /// An operation needed a non-empty input.
    Empty,
    /// Input data was malformed (e.g. ragged rows, non-monotonic abscissae).
    InvalidInput(String),
    /// An iterative method failed to converge within its iteration budget.
    NoConvergence {
        /// Number of iterations performed.
        iterations: usize,
        /// Last residual norm observed.
        residual: f64,
    },
}

impl fmt::Display for NumericError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NumericError::Singular { pivot } => {
                write!(f, "matrix is singular at pivot {pivot}")
            }
            NumericError::DimensionMismatch { expected, found } => {
                write!(f, "dimension mismatch: expected {expected}, found {found}")
            }
            NumericError::Empty => write!(f, "operation requires non-empty input"),
            NumericError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
            NumericError::NoConvergence {
                iterations,
                residual,
            } => write!(
                f,
                "no convergence after {iterations} iterations (residual {residual:.3e})"
            ),
        }
    }
}

impl std::error::Error for NumericError {}

/// Field element usable by the generic dense linear algebra.
///
/// Implemented for `f64` and [`Complex64`]. [`Scalar::magnitude`] is used by
/// partial pivoting; [`Scalar::from_f64`] lifts real constants into the field.
pub trait Scalar:
    Copy
    + fmt::Debug
    + PartialEq
    + std::ops::Add<Output = Self>
    + std::ops::Sub<Output = Self>
    + std::ops::Mul<Output = Self>
    + std::ops::Div<Output = Self>
    + std::ops::Neg<Output = Self>
{
    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
    /// Modulus (absolute value) used for pivot selection.
    fn magnitude(&self) -> f64;
    /// Lift a real number into the field.
    fn from_f64(x: f64) -> Self;
}

impl Scalar for f64 {
    fn zero() -> Self {
        0.0
    }
    fn one() -> Self {
        1.0
    }
    fn magnitude(&self) -> f64 {
        self.abs()
    }
    fn from_f64(x: f64) -> Self {
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        let e = NumericError::Singular { pivot: 3 };
        assert!(e.to_string().contains("pivot 3"));
        let e = NumericError::DimensionMismatch {
            expected: 4,
            found: 2,
        };
        assert!(e.to_string().contains("expected 4"));
        let e = NumericError::NoConvergence {
            iterations: 10,
            residual: 1.0,
        };
        assert!(e.to_string().contains("10 iterations"));
    }

    #[test]
    fn f64_scalar_impl() {
        assert_eq!(<f64 as Scalar>::zero(), 0.0);
        assert_eq!(<f64 as Scalar>::one(), 1.0);
        assert_eq!((-3.0f64).magnitude(), 3.0);
        assert_eq!(<f64 as Scalar>::from_f64(2.5), 2.5);
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NumericError>();
    }
}
