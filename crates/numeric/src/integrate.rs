//! Numerical-integration support for the transient engine.
//!
//! A SPICE-class simulator discretizes `i = C·dv/dt` with an implicit linear
//! multistep method. Writing the discretization as
//!
//! ```text
//! dx/dt ≈ a0·x(t_n) + history
//! ```
//!
//! each reactive element stamps `a0·C` into the Jacobian and the history term
//! into the right-hand side. This module provides the coefficients for
//! backward Euler, trapezoidal and Gear-2 (BDF2) methods, local truncation
//! error estimates, and the adaptive [`StepController`] used by
//! `gabm-sim`'s transient analysis.
//!
//! The paper's §3.3 note — "models are simulated using electrical simulators
//! which are time-discrete systems with *variable time intervals*" — is
//! exactly what the controller implements; the slew-rate construct's one-step
//! delay element reads the controller's current step.

/// Implicit integration method used for reactive elements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Method {
    /// First-order backward Euler: L-stable, strongly damped. The safe choice
    /// around discontinuities (strobe edges, limiter corners).
    BackwardEuler,
    /// Second-order trapezoidal rule: A-stable, no numerical damping; SPICE's
    /// default, and ours.
    #[default]
    Trapezoidal,
    /// Second-order backward differentiation (Gear-2): L-stable, mildly
    /// damped; useful when trapezoidal ringing appears.
    Gear2,
}

impl Method {
    /// Order of accuracy of the method.
    pub fn order(self) -> usize {
        match self {
            Method::BackwardEuler => 1,
            Method::Trapezoidal | Method::Gear2 => 2,
        }
    }
}

/// Discretization coefficients for one time step.
///
/// The derivative at the new time point is expressed as
/// `dx/dt ≈ coeff0·x_new + rhs_history`, where `rhs_history` is assembled via
/// [`Coefficients::history`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Coefficients {
    /// Multiplier of the new value in the derivative approximation.
    pub coeff0: f64,
    method: Method,
    dt: f64,
    dt_prev: f64,
}

impl Coefficients {
    /// Computes the coefficients for `method` with current step `dt` and the
    /// previous step `dt_prev` (used by the variable-step Gear-2 formula).
    ///
    /// # Panics
    ///
    /// Panics if `dt <= 0`.
    pub fn new(method: Method, dt: f64, dt_prev: f64) -> Self {
        assert!(dt > 0.0, "time step must be positive, got {dt}");
        let coeff0 = match method {
            Method::BackwardEuler => 1.0 / dt,
            Method::Trapezoidal => 2.0 / dt,
            Method::Gear2 => {
                if dt_prev > 0.0 {
                    // Variable-step BDF2 leading coefficient.
                    let rho = dt / dt_prev;
                    (1.0 + 2.0 * rho) / (1.0 + rho) / dt
                } else {
                    // First step: fall back to backward Euler.
                    1.0 / dt
                }
            }
        };
        Coefficients {
            coeff0,
            method,
            dt,
            dt_prev,
        }
    }

    /// History term of the derivative approximation given the previous value
    /// `x_prev`, the previous derivative `dx_prev`, and the value before that
    /// `x_prev2`:
    ///
    /// `dx/dt ≈ coeff0·x_new + history(x_prev, dx_prev, x_prev2)`.
    pub fn history(&self, x_prev: f64, dx_prev: f64, x_prev2: f64) -> f64 {
        match self.method {
            Method::BackwardEuler => -x_prev / self.dt,
            Method::Trapezoidal => -2.0 * x_prev / self.dt - dx_prev,
            Method::Gear2 => {
                if self.dt_prev > 0.0 {
                    let rho = self.dt / self.dt_prev;
                    let a1 = -(1.0 + rho) / self.dt;
                    let a2 = rho * rho / (1.0 + rho) / self.dt;
                    a1 * x_prev + a2 * x_prev2
                } else {
                    -x_prev / self.dt
                }
            }
        }
    }

    /// Method these coefficients were derived for.
    pub fn method(&self) -> Method {
        self.method
    }

    /// Current step size.
    pub fn dt(&self) -> f64 {
        self.dt
    }
}

/// Local truncation error estimate for the value `x_new` produced over the
/// last step, from divided differences of the recent history.
///
/// Returns an estimate of the per-step error; the controller compares it with
/// a tolerance to accept or shrink the step.
pub fn local_truncation_error(
    method: Method,
    dt: f64,
    x_new: f64,
    x_prev: f64,
    x_prev2: f64,
    dt_prev: f64,
) -> f64 {
    if dt_prev <= 0.0 {
        // Not enough history: assume worst case so the controller stays
        // conservative on the first steps.
        return (x_new - x_prev).abs() * 0.5;
    }
    // Second divided difference ≈ x''/2.
    let dd1 = (x_new - x_prev) / dt;
    let dd0 = (x_prev - x_prev2) / dt_prev;
    let dd2 = (dd1 - dd0) / (dt + dt_prev);
    match method {
        // BE: LTE = dt²/2 · x'' = dt² · dd2.
        Method::BackwardEuler => (dt * dt * dd2).abs(),
        // Trap/Gear2: LTE ~ dt³ · x''' — approximate x''' by dd2/dt scale;
        // this keeps the classic h³ scaling without a third difference.
        Method::Trapezoidal => (dt * dt * dd2 / 6.0).abs(),
        Method::Gear2 => (dt * dt * dd2 / 3.0).abs(),
    }
}

/// Adaptive step-size controller driven by Newton convergence and local
/// truncation error.
///
/// # Example
///
/// ```
/// use gabm_numeric::integrate::{StepController, StepOutcome};
///
/// let mut ctl = StepController::new(1e-9, 1e-12, 1e-6);
/// let dt = ctl.current_dt();
/// // ... run a transient step, estimate LTE ...
/// match ctl.advance(0.0) {
///     StepOutcome::Accept { next_dt } => assert!(next_dt >= dt),
///     StepOutcome::Reject { retry_dt } => assert!(retry_dt < dt),
/// }
/// ```
#[derive(Debug, Clone)]
pub struct StepController {
    dt: f64,
    dt_min: f64,
    dt_max: f64,
    /// Target LTE per step.
    pub tol: f64,
    /// Maximum ratio a step may grow by (SPICE-style 2× cap keeps the
    /// discontinuity handling of §4's note well-behaved).
    pub max_growth: f64,
    rejects_in_a_row: usize,
}

/// Decision returned by [`StepController::advance`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StepOutcome {
    /// The step is accepted; continue with `next_dt`.
    Accept {
        /// Step to use for the next interval.
        next_dt: f64,
    },
    /// The step must be redone with the smaller `retry_dt`.
    Reject {
        /// Step to retry the same interval with.
        retry_dt: f64,
    },
}

impl StepController {
    /// Creates a controller with initial step `dt`, minimum `dt_min` and
    /// maximum `dt_max`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < dt_min <= dt <= dt_max`.
    pub fn new(dt: f64, dt_min: f64, dt_max: f64) -> Self {
        assert!(
            dt_min > 0.0 && dt_min <= dt && dt <= dt_max,
            "require 0 < dt_min <= dt <= dt_max (got {dt_min}, {dt}, {dt_max})"
        );
        StepController {
            dt,
            dt_min,
            dt_max,
            tol: 1e-4,
            max_growth: 2.0,
            rejects_in_a_row: 0,
        }
    }

    /// Step the controller will attempt next.
    pub fn current_dt(&self) -> f64 {
        self.dt
    }

    /// Forces the next step (clamped to the controller's bounds) — used when
    /// a breakpoint (source corner, strobe edge) must be hit exactly.
    pub fn clamp_to(&mut self, dt: f64) {
        self.dt = dt.clamp(self.dt_min, self.dt_max);
    }

    /// Judges the step from its LTE estimate: accept and possibly grow, or
    /// reject and shrink.
    pub fn advance(&mut self, lte: f64) -> StepOutcome {
        if lte > self.tol && self.dt > self.dt_min {
            // Shrink proportionally to the overshoot, at least by half.
            let shrink = (self.tol / lte).powf(0.5).clamp(0.1, 0.5);
            self.dt = (self.dt * shrink).max(self.dt_min);
            self.rejects_in_a_row += 1;
            return StepOutcome::Reject { retry_dt: self.dt };
        }
        self.rejects_in_a_row = 0;
        let grow = if lte <= 0.0 {
            self.max_growth
        } else {
            (self.tol / lte).powf(0.33).clamp(1.0, self.max_growth)
        };
        self.dt = (self.dt * grow).min(self.dt_max);
        StepOutcome::Accept { next_dt: self.dt }
    }

    /// Reports a Newton-convergence failure: the step is halved and retried.
    ///
    /// Returns `None` if the controller is already at `dt_min` — the caller
    /// should abort with a convergence error (ELDO would report
    /// "timestep too small").
    pub fn newton_failure(&mut self) -> Option<f64> {
        if self.dt <= self.dt_min * (1.0 + 1e-12) {
            return None;
        }
        self.dt = (self.dt / 8.0).max(self.dt_min);
        self.rejects_in_a_row += 1;
        Some(self.dt)
    }

    /// Number of consecutive rejected steps (diagnostic).
    pub fn rejects_in_a_row(&self) -> usize {
        self.rejects_in_a_row
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn method_orders() {
        assert_eq!(Method::BackwardEuler.order(), 1);
        assert_eq!(Method::Trapezoidal.order(), 2);
        assert_eq!(Method::Gear2.order(), 2);
        assert_eq!(Method::default(), Method::Trapezoidal);
    }

    /// Integrate dx/dt = -x over [0,1] with each method and check accuracy
    /// against e^{-1}. The derivative form used matches the simulator's:
    /// solve coeff0·x_new + history = -x_new.
    fn integrate_decay(method: Method, steps: usize) -> f64 {
        let dt = 1.0 / steps as f64;
        let mut x_prev = 1.0;
        let mut x_prev2 = 1.0;
        let mut dx_prev = -1.0;
        let mut dt_prev = 0.0;
        for _ in 0..steps {
            let c = Coefficients::new(method, dt, dt_prev);
            // coeff0·x + hist = -x  ⇒  x = -hist / (coeff0 + 1).
            let hist = c.history(x_prev, dx_prev, x_prev2);
            let x_new = -hist / (c.coeff0 + 1.0);
            dx_prev = c.coeff0 * x_new + hist;
            x_prev2 = x_prev;
            x_prev = x_new;
            dt_prev = dt;
        }
        x_prev
    }

    #[test]
    fn backward_euler_first_order() {
        let exact = (-1.0f64).exp();
        let e100 = (integrate_decay(Method::BackwardEuler, 100) - exact).abs();
        let e200 = (integrate_decay(Method::BackwardEuler, 200) - exact).abs();
        // Halving the step should roughly halve the error.
        let ratio = e100 / e200;
        assert!((1.6..2.4).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn trapezoidal_second_order() {
        let exact = (-1.0f64).exp();
        let e100 = (integrate_decay(Method::Trapezoidal, 100) - exact).abs();
        let e200 = (integrate_decay(Method::Trapezoidal, 200) - exact).abs();
        let ratio = e100 / e200;
        assert!((3.3..4.7).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn gear2_second_order() {
        let exact = (-1.0f64).exp();
        let e100 = (integrate_decay(Method::Gear2, 100) - exact).abs();
        let e200 = (integrate_decay(Method::Gear2, 200) - exact).abs();
        let ratio = e100 / e200;
        assert!((3.0..5.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn gear2_first_step_is_be() {
        let c = Coefficients::new(Method::Gear2, 0.1, 0.0);
        let be = Coefficients::new(Method::BackwardEuler, 0.1, 0.0);
        assert_eq!(c.coeff0, be.coeff0);
    }

    #[test]
    #[should_panic(expected = "time step must be positive")]
    fn zero_dt_panics() {
        let _ = Coefficients::new(Method::Trapezoidal, 0.0, 0.0);
    }

    #[test]
    fn lte_scaling() {
        // A quadratic x(t) = t² has constant second derivative: BE LTE should
        // be non-zero, and shrink with dt².
        let f = |t: f64| t * t;
        let lte1 = local_truncation_error(Method::BackwardEuler, 0.1, f(0.3), f(0.2), f(0.1), 0.1);
        let lte2 =
            local_truncation_error(Method::BackwardEuler, 0.05, f(0.20), f(0.15), f(0.10), 0.05);
        assert!(lte1 > 0.0);
        let ratio = lte1 / lte2;
        assert!((3.0..5.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn controller_accepts_and_grows() {
        let mut c = StepController::new(1e-6, 1e-9, 1e-3);
        match c.advance(0.0) {
            StepOutcome::Accept { next_dt } => assert!((next_dt - 2e-6).abs() < 1e-12),
            other => panic!("expected accept, got {other:?}"),
        }
    }

    #[test]
    fn controller_rejects_and_shrinks() {
        let mut c = StepController::new(1e-6, 1e-9, 1e-3);
        c.tol = 1e-6;
        match c.advance(1.0) {
            StepOutcome::Reject { retry_dt } => assert!(retry_dt < 1e-6),
            other => panic!("expected reject, got {other:?}"),
        }
        assert_eq!(c.rejects_in_a_row(), 1);
    }

    #[test]
    fn controller_growth_capped() {
        let mut c = StepController::new(1e-6, 1e-9, 1e-3);
        c.max_growth = 2.0;
        if let StepOutcome::Accept { next_dt } = c.advance(1e-30) {
            assert!(next_dt <= 2e-6 * (1.0 + 1e-12));
        } else {
            panic!("expected accept");
        }
    }

    #[test]
    fn controller_respects_dt_min_on_newton_failure() {
        let mut c = StepController::new(8e-9, 1e-9, 1e-3);
        assert_eq!(c.newton_failure(), Some(1e-9));
        assert_eq!(c.newton_failure(), None);
    }

    #[test]
    fn controller_clamp_to() {
        let mut c = StepController::new(1e-6, 1e-9, 1e-3);
        c.clamp_to(1e-12);
        assert_eq!(c.current_dt(), 1e-9);
        c.clamp_to(1.0);
        assert_eq!(c.current_dt(), 1e-3);
    }

    #[test]
    #[should_panic(expected = "require 0 < dt_min")]
    fn controller_validates_bounds() {
        let _ = StepController::new(1e-6, 1e-3, 1e-9);
    }
}
