//! Newton–Raphson support: SPICE-style convergence criteria and damping.
//!
//! The nonlinear MNA system `F(x) = 0` is solved by damped Newton iteration.
//! Convergence is judged per-unknown with combined relative/absolute
//! tolerances exactly as classic SPICE does (`RELTOL`, `VNTOL`, `ABSTOL`),
//! because a single global norm misbehaves when node voltages (volts) and
//! source branch currents (milliamps) share the solution vector.

/// Convergence tolerances for the Newton iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerances {
    /// Relative tolerance applied to every unknown (SPICE `RELTOL`).
    pub reltol: f64,
    /// Absolute voltage tolerance (SPICE `VNTOL`).
    pub vntol: f64,
    /// Absolute current tolerance (SPICE `ABSTOL`).
    pub abstol: f64,
}

impl Default for Tolerances {
    fn default() -> Self {
        Tolerances {
            reltol: 1e-3,
            vntol: 1e-6,
            abstol: 1e-12,
        }
    }
}

impl Tolerances {
    /// Checks one unknown for convergence given its new and old values and
    /// whether it is a voltage (`true`) or a branch current (`false`).
    pub fn converged_scalar(&self, new: f64, old: f64, is_voltage: bool) -> bool {
        let abs = if is_voltage { self.vntol } else { self.abstol };
        (new - old).abs() <= self.reltol * new.abs().max(old.abs()) + abs
    }

    /// Checks a full solution update. `is_voltage[i]` flags voltage unknowns;
    /// missing entries default to voltage semantics.
    pub fn converged(&self, new: &[f64], old: &[f64], is_voltage: &[bool]) -> bool {
        new.iter().zip(old).enumerate().all(|(i, (n, o))| {
            let v = is_voltage.get(i).copied().unwrap_or(true);
            self.converged_scalar(*n, *o, v)
        })
    }
}

/// Limits the per-iteration change of an exponential-junction voltage, the
/// classic SPICE `pnjlim` device-level damping.
///
/// Junction devices (diode, MOS in subthreshold-like regions) produce Newton
/// overshoots of hundreds of volts; limiting the voltage step to a few
/// thermal voltages keeps `exp(v/vt)` finite and the iteration stable. This
/// is part of the "additional simulation expertise ... included in the coding
/// process" the paper's §4 note calls for.
pub fn pnjlim(v_new: f64, v_old: f64, vt: f64, v_crit: f64) -> f64 {
    if v_new > v_crit && (v_new - v_old).abs() > 2.0 * vt {
        if v_old > 0.0 {
            let arg = 1.0 + (v_new - v_old) / vt;
            if arg > 0.0 {
                v_old + vt * arg.ln()
            } else {
                v_crit
            }
        } else {
            vt * (v_new / vt).max(1e-30).ln()
        }
    } else {
        v_new
    }
}

/// Critical voltage for [`pnjlim`] given the saturation current `is` and the
/// thermal voltage `vt`.
pub fn critical_voltage(is: f64, vt: f64) -> f64 {
    vt * (vt / (std::f64::consts::SQRT_2 * is)).ln()
}

/// Simple step damping: scales the Newton update so that no component of the
/// solution changes by more than `max_delta`.
///
/// Returns the applied scale factor in `(0, 1]`.
pub fn damp_update(update: &mut [f64], max_delta: f64) -> f64 {
    let worst = update.iter().fold(0.0f64, |m, u| m.max(u.abs()));
    if worst <= max_delta || worst == 0.0 {
        return 1.0;
    }
    let scale = max_delta / worst;
    for u in update.iter_mut() {
        *u *= scale;
    }
    scale
}

/// Trace of a Newton solve, exposed for diagnostics and the convergence
/// ablation benches.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NewtonStats {
    /// Iterations used by the last solve.
    pub iterations: usize,
    /// Total Jacobian factorizations.
    pub factorizations: usize,
    /// Final maximum update magnitude.
    pub final_delta: f64,
    /// Whether device-level limiting fired during the solve.
    pub limited: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_tolerances_match_spice() {
        let t = Tolerances::default();
        assert_eq!(t.reltol, 1e-3);
        assert_eq!(t.vntol, 1e-6);
        assert_eq!(t.abstol, 1e-12);
    }

    #[test]
    fn scalar_convergence_volts_vs_amps() {
        let t = Tolerances::default();
        // 0.5 µV change on a 1 V node: converged for voltage...
        assert!(t.converged_scalar(1.0000005, 1.0, true));
        // ...but a 0.5 µA change on a 1 A branch current is *also* converged
        // by reltol; a 0.5 µA change on a ~0 A branch is not.
        assert!(!t.converged_scalar(5e-7, 0.0, false));
        assert!(t.converged_scalar(5e-13, 0.0, false));
    }

    #[test]
    fn vector_convergence() {
        let t = Tolerances::default();
        assert!(t.converged(&[1.0, 2.0], &[1.0, 2.0], &[true, true]));
        assert!(!t.converged(&[1.0, 2.1], &[1.0, 2.0], &[true, true]));
        // Missing flags default to voltage.
        assert!(t.converged(&[1.0, 2.0], &[1.0, 2.0], &[]));
    }

    #[test]
    fn pnjlim_limits_large_forward_steps() {
        let vt = 0.02585;
        let v_crit = critical_voltage(1e-14, vt);
        // A wild Newton guess of 5 V from 0.6 V must be pulled back near
        // v_old.
        let limited = pnjlim(5.0, 0.6, vt, v_crit);
        assert!(limited < 1.0, "limited = {limited}");
        assert!(limited > 0.6);
    }

    #[test]
    fn pnjlim_passes_small_steps() {
        let vt = 0.02585;
        let v_crit = critical_voltage(1e-14, vt);
        assert_eq!(pnjlim(0.61, 0.60, vt, v_crit), 0.61);
        // Reverse bias is never limited.
        assert_eq!(pnjlim(-5.0, 0.0, vt, v_crit), -5.0);
    }

    #[test]
    fn critical_voltage_sane() {
        let vc = critical_voltage(1e-14, 0.02585);
        assert!((0.5..1.2).contains(&vc), "vc = {vc}");
    }

    #[test]
    fn damping_scales_update() {
        let mut u = vec![10.0, -20.0, 1.0];
        let s = damp_update(&mut u, 2.0);
        assert!((s - 0.1).abs() < 1e-15);
        assert!((u[1] + 2.0).abs() < 1e-15);
        // Within bounds: untouched.
        let mut v = vec![0.5, -0.5];
        assert_eq!(damp_update(&mut v, 2.0), 1.0);
        assert_eq!(v, vec![0.5, -0.5]);
    }

    #[test]
    fn damping_handles_zero_update() {
        let mut u = vec![0.0, 0.0];
        assert_eq!(damp_update(&mut u, 1.0), 1.0);
    }
}
