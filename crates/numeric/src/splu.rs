//! Left-looking (Gilbert–Peierls) sparse LU factorization with partial
//! pivoting, plus KLU-style numeric refactorization.
//!
//! The simulator uses the dense solver for small systems and switches to this
//! factorization above a node-count threshold; the `dense vs sparse` ablation
//! bench quantifies the crossover on ladder networks.
//!
//! A Newton loop refactors the *same* sparsity pattern every iteration —
//! only the values change. [`SparseLu::new`] therefore records the input
//! pattern and stores the `L`/`U` patterns complete (structural zeros
//! included) with each `U` column in elimination order, so that
//! [`SparseLu::refactor`] can replay the numeric sweep against the frozen
//! pivot order without redoing the symbolic reachability analysis or the
//! pivot search, and without reallocating the factors.

use crate::sparse::SparseMatrix;
use crate::NumericError;

/// Sparse LU factors of a square [`SparseMatrix`], `P·A = L·U`.
///
/// # Example
///
/// ```
/// use gabm_numeric::{SparseLu, TripletBuilder};
///
/// # fn main() -> Result<(), gabm_numeric::NumericError> {
/// let mut b = TripletBuilder::new(2, 2);
/// b.push(0, 0, 4.0);
/// b.push(0, 1, 1.0);
/// b.push(1, 0, 1.0);
/// b.push(1, 1, 3.0);
/// let lu = SparseLu::new(&b.to_csc())?;
/// let x = lu.solve(&[1.0, 2.0])?;
/// assert!((4.0 * x[0] + x[1] - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SparseLu {
    n: usize,
    // L in CSC without the unit diagonal.
    l_col_ptr: Vec<usize>,
    l_row_idx: Vec<usize>,
    l_values: Vec<f64>,
    // U in CSC, entries in elimination (topological) order with the
    // diagonal last in each column — the order `refactor` replays.
    u_col_ptr: Vec<usize>,
    u_row_idx: Vec<usize>,
    u_values: Vec<f64>,
    /// `perm[i]` = original row placed at position `i`.
    perm: Vec<usize>,
    // Structural pattern of the factored input, kept so `refactor` can
    // verify the symbolic analysis still applies.
    a_col_ptr: Vec<usize>,
    a_row_idx: Vec<usize>,
}

const PIVOT_EPS: f64 = 1e-13;

impl SparseLu {
    /// Factorizes `a` column by column with partial pivoting.
    ///
    /// # Errors
    ///
    /// * [`NumericError::DimensionMismatch`] if `a` is not square.
    /// * [`NumericError::Singular`] if a column yields no usable pivot.
    pub fn new(a: &SparseMatrix) -> Result<Self, NumericError> {
        if a.rows() != a.cols() {
            return Err(NumericError::DimensionMismatch {
                expected: a.rows(),
                found: a.cols(),
            });
        }
        let n = a.rows();
        // pinv[original_row] = current position, or usize::MAX while the row
        // is not yet pivotal.
        let mut pinv = vec![usize::MAX; n];
        let mut perm = vec![usize::MAX; n];

        let mut l_col_ptr = vec![0usize];
        let mut l_row_idx: Vec<usize> = Vec::new();
        let mut l_values: Vec<f64> = Vec::new();
        let mut u_col_ptr = vec![0usize];
        let mut u_row_idx: Vec<usize> = Vec::new();
        let mut u_values: Vec<f64> = Vec::new();

        // Dense work vector + occupancy pattern per column.
        let mut work = vec![0.0f64; n];
        let mut pattern: Vec<usize> = Vec::with_capacity(n);
        let mut in_pattern = vec![false; n];
        // Explicit DFS stack: (original_row, next child index to visit).
        let mut stack: Vec<(usize, usize)> = Vec::new();

        #[allow(clippy::needless_range_loop)]
        for col in 0..n {
            // Symbolic step: the non-zero pattern of the solution of
            // L·x = A[:, col] is the set of nodes reachable in the graph of L
            // from the rows of A[:, col]. Depth-first search records them in
            // topological (reverse post-) order.
            pattern.clear();
            for (row, _) in a.col_iter(col) {
                if in_pattern[row] {
                    continue;
                }
                stack.push((row, 0));
                in_pattern[row] = true;
                while let Some(&mut (r, ref mut child)) = stack.last_mut() {
                    // Children of r are the L entries of the pivotal column
                    // owning r (if r is pivotal).
                    let pos = pinv[r];
                    let mut advanced = false;
                    if pos != usize::MAX {
                        let (lo, hi) = (l_col_ptr[pos], l_col_ptr[pos + 1]);
                        while *child < hi - lo {
                            let next_row = l_row_idx[lo + *child];
                            *child += 1;
                            if !in_pattern[next_row] {
                                in_pattern[next_row] = true;
                                stack.push((next_row, 0));
                                advanced = true;
                                break;
                            }
                        }
                    }
                    if !advanced {
                        stack.pop();
                        pattern.push(r);
                    }
                }
            }
            // pattern is now in topological order for the numeric sweep when
            // traversed from the end (roots last ⇒ reverse gives dependencies
            // first).
            for (row, v) in a.col_iter(col) {
                work[row] = v;
            }
            // Numeric sweep doubling as the U emission: by the time a
            // pivotal row is visited (dependencies first), its work value
            // is final, so it is the U entry. Structural zeros are kept —
            // `refactor` replays exactly these positions in exactly this
            // order with different values, where the entry may be nonzero.
            for &r in pattern.iter().rev() {
                let pos = pinv[r];
                if pos == usize::MAX {
                    continue;
                }
                let xr = work[r];
                u_row_idx.push(pos);
                u_values.push(xr);
                if xr == 0.0 {
                    continue;
                }
                let (lo, hi) = (l_col_ptr[pos], l_col_ptr[pos + 1]);
                for k in lo..hi {
                    work[l_row_idx[k]] -= l_values[k] * xr;
                }
            }
            // Pivot selection among not-yet-pivotal rows in the pattern.
            let mut pivot_row = usize::MAX;
            let mut pivot_mag = 0.0f64;
            for &r in &pattern {
                if pinv[r] == usize::MAX {
                    let m = work[r].abs();
                    if m > pivot_mag {
                        pivot_mag = m;
                        pivot_row = r;
                    }
                }
            }
            if pivot_row == usize::MAX || pivot_mag < PIVOT_EPS {
                return Err(NumericError::Singular { pivot: col });
            }
            let pivot_val = work[pivot_row];
            pinv[pivot_row] = col;
            perm[col] = pivot_row;
            // Close the U column with the diagonal (the sweep above has
            // already emitted every previously-pivotal row).
            u_row_idx.push(col);
            u_values.push(pivot_val);
            u_col_ptr.push(u_row_idx.len());
            // Emit L column: non-pivotal rows scaled by the pivot, with
            // structural zeros kept for `refactor`.
            for &r in &pattern {
                if pinv[r] == usize::MAX {
                    l_row_idx.push(r);
                    l_values.push(work[r] / pivot_val);
                }
            }
            l_col_ptr.push(l_row_idx.len());
            // Reset work/pattern.
            for &r in &pattern {
                work[r] = 0.0;
                in_pattern[r] = false;
            }
        }
        Ok(SparseLu {
            n,
            l_col_ptr,
            l_row_idx,
            l_values,
            u_col_ptr,
            u_row_idx,
            u_values,
            perm,
            a_col_ptr: a.col_ptr().to_vec(),
            a_row_idx: a.row_indices().to_vec(),
        })
    }

    /// `true` if `a` has the structural pattern this factorization was
    /// built for, i.e. [`SparseLu::refactor`] will accept it.
    pub fn pattern_matches(&self, a: &SparseMatrix) -> bool {
        a.rows() == self.n
            && a.cols() == self.n
            && a.col_ptr() == &self.a_col_ptr[..]
            && a.row_indices() == &self.a_row_idx[..]
    }

    /// Recomputes the numeric factors of `a` in place, reusing the
    /// symbolic analysis and pivot order of the original factorization —
    /// the cheap path of a Newton loop, where the matrix pattern is fixed
    /// and only the values move between iterations.
    ///
    /// The replay performs the same floating-point operations in the same
    /// order as [`SparseLu::new`] would, so when the frozen pivot order
    /// coincides with the order a fresh factorization would choose, the
    /// factors (and subsequent [`SparseLu::solve`] results) are bitwise
    /// identical.
    ///
    /// # Errors
    ///
    /// * [`NumericError::DimensionMismatch`] if `a` is not `dim()`-square.
    /// * [`NumericError::InvalidInput`] if the structural pattern of `a`
    ///   differs from the factored one (check [`SparseLu::pattern_matches`]
    ///   first, or fall back to a full factorization).
    /// * [`NumericError::Singular`] if a frozen pivot becomes numerically
    ///   zero under the new values. The factor contents are unspecified
    ///   afterwards; rebuild with [`SparseLu::new`] to re-pivot.
    pub fn refactor(&mut self, a: &SparseMatrix) -> Result<(), NumericError> {
        if a.rows() != self.n || a.cols() != self.n {
            return Err(NumericError::DimensionMismatch {
                expected: self.n,
                found: a.rows(),
            });
        }
        if !self.pattern_matches(a) {
            return Err(NumericError::InvalidInput(
                "sparsity pattern differs from the factored matrix".into(),
            ));
        }
        let mut work = vec![0.0f64; self.n];
        for col in 0..self.n {
            for (row, v) in a.col_iter(col) {
                work[row] = v;
            }
            let (ulo, uhi) = (self.u_col_ptr[col], self.u_col_ptr[col + 1]);
            // Replay the elimination in the stored topological order; the
            // stored row set is the full reachability pattern of the
            // column, so every touched work entry is listed in U or L.
            for k in ulo..uhi - 1 {
                let pos = self.u_row_idx[k];
                let r = self.perm[pos];
                let xr = work[r];
                self.u_values[k] = xr;
                if xr == 0.0 {
                    continue;
                }
                for i in self.l_col_ptr[pos]..self.l_col_ptr[pos + 1] {
                    work[self.l_row_idx[i]] -= self.l_values[i] * xr;
                }
            }
            let pivot_row = self.perm[col];
            let pivot_val = work[pivot_row];
            if pivot_val.abs() < PIVOT_EPS {
                return Err(NumericError::Singular { pivot: col });
            }
            self.u_values[uhi - 1] = pivot_val;
            for i in self.l_col_ptr[col]..self.l_col_ptr[col + 1] {
                let r = self.l_row_idx[i];
                self.l_values[i] = work[r] / pivot_val;
                work[r] = 0.0;
            }
            for k in ulo..uhi - 1 {
                work[self.perm[self.u_row_idx[k]]] = 0.0;
            }
            work[pivot_row] = 0.0;
        }
        Ok(())
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Fill-in: total stored entries in `L` and `U`.
    pub fn factor_nnz(&self) -> usize {
        self.l_values.len() + self.u_values.len()
    }

    /// Solves `A·x = b`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::DimensionMismatch`] if `b.len() != dim()`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, NumericError> {
        if b.len() != self.n {
            return Err(NumericError::DimensionMismatch {
                expected: self.n,
                found: b.len(),
            });
        }
        // Forward solve L·y = b. L's column k eliminates into original row
        // indices; track the solution on original rows.
        let mut y = b.to_vec();
        for k in 0..self.n {
            let yk = y[self.perm[k]];
            if yk == 0.0 {
                continue;
            }
            let (lo, hi) = (self.l_col_ptr[k], self.l_col_ptr[k + 1]);
            for i in lo..hi {
                y[self.l_row_idx[i]] -= self.l_values[i] * yk;
            }
        }
        // Gather into pivotal order.
        let mut x: Vec<f64> = (0..self.n).map(|k| y[self.perm[k]]).collect();
        // Backward solve U·x = y. U columns have the diagonal last.
        for k in (0..self.n).rev() {
            let (lo, hi) = (self.u_col_ptr[k], self.u_col_ptr[k + 1]);
            let diag = self.u_values[hi - 1];
            let xk = x[k] / diag;
            x[k] = xk;
            if xk == 0.0 {
                continue;
            }
            for i in lo..(hi - 1) {
                x[self.u_row_idx[i]] -= self.u_values[i] * xk;
            }
        }
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::TripletBuilder;

    fn dense_to_builder(rows: &[&[f64]]) -> TripletBuilder {
        let mut b = TripletBuilder::new(rows.len(), rows[0].len());
        for (i, r) in rows.iter().enumerate() {
            for (j, &v) in r.iter().enumerate() {
                if v != 0.0 {
                    b.push(i, j, v);
                }
            }
        }
        b
    }

    fn check_solution(rows: &[&[f64]], b: &[f64]) {
        let m = dense_to_builder(rows).to_csc();
        let lu = SparseLu::new(&m).unwrap();
        let x = lu.solve(b).unwrap();
        let r = m.mul_vec(&x).unwrap();
        for (ri, bi) in r.iter().zip(b) {
            assert!((ri - bi).abs() < 1e-9, "residual too large: {ri} vs {bi}");
        }
    }

    #[test]
    fn solve_2x2() {
        check_solution(&[&[4.0, 1.0][..], &[1.0, 3.0][..]], &[1.0, 2.0]);
    }

    #[test]
    fn requires_pivoting() {
        check_solution(&[&[0.0, 1.0][..], &[1.0, 0.0][..]], &[5.0, 7.0]);
    }

    #[test]
    fn tridiagonal_ladder() {
        // RC-ladder-like tridiagonal system.
        let n = 50;
        let mut b = TripletBuilder::new(n, n);
        for i in 0..n {
            b.push(i, i, 2.0);
            if i > 0 {
                b.push(i, i - 1, -1.0);
            }
            if i + 1 < n {
                b.push(i, i + 1, -1.0);
            }
        }
        let m = b.to_csc();
        let lu = SparseLu::new(&m).unwrap();
        let rhs = vec![1.0; n];
        let x = lu.solve(&rhs).unwrap();
        let r = m.mul_vec(&x).unwrap();
        for (ri, bi) in r.iter().zip(&rhs) {
            assert!((ri - bi).abs() < 1e-9);
        }
        // Tridiagonal factors stay narrow: fill-in bounded by 3 per column.
        assert!(lu.factor_nnz() <= 3 * n);
    }

    #[test]
    fn detects_singular() {
        let m = dense_to_builder(&[&[1.0, 2.0][..], &[2.0, 4.0][..]]).to_csc();
        assert!(matches!(
            SparseLu::new(&m),
            Err(NumericError::Singular { .. })
        ));
    }

    #[test]
    fn structurally_singular_column() {
        let mut b = TripletBuilder::new(2, 2);
        b.push(0, 0, 1.0);
        // Column 1 completely empty.
        let m = b.to_csc();
        assert!(matches!(
            SparseLu::new(&m),
            Err(NumericError::Singular { .. })
        ));
    }

    #[test]
    fn rejects_non_square() {
        let b = TripletBuilder::new(2, 3);
        assert!(matches!(
            SparseLu::new(&b.to_csc()),
            Err(NumericError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn refactor_matches_full_factorization_to_the_ulp() {
        // Diagonally dominant systems keep the pivot order stable, so a
        // numeric-only refactorization must reproduce a fresh
        // factorization bit for bit (same operations, same order).
        let mut state = 0x1994_2026_abcd_ef01u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        for n in [4usize, 9, 17] {
            // One structural pattern, two value sets.
            let mut coords: Vec<(usize, usize)> = (0..n).map(|i| (i, i)).collect();
            for i in 0..n {
                for j in 0..n {
                    if i != j && next() > 0.2 {
                        coords.push((i, j));
                    }
                }
            }
            let fill = |next: &mut dyn FnMut() -> f64| {
                let mut tb = TripletBuilder::new(n, n);
                for &(i, j) in &coords {
                    let v = next();
                    tb.push(i, j, if i == j { v + 4.0 } else { v });
                }
                tb.to_csc()
            };
            let a1 = fill(&mut next);
            let a2 = fill(&mut next);
            assert!(a1.same_pattern(&a2));

            let mut reused = SparseLu::new(&a1).unwrap();
            assert!(reused.pattern_matches(&a2));
            reused.refactor(&a2).unwrap();
            let fresh = SparseLu::new(&a2).unwrap();

            let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(reused.perm, fresh.perm, "n={n}: pivot order drifted");
            assert_eq!(bits(&reused.l_values), bits(&fresh.l_values), "n={n}: L");
            assert_eq!(bits(&reused.u_values), bits(&fresh.u_values), "n={n}: U");

            let rhs: Vec<f64> = (0..n).map(|_| next()).collect();
            let xr = reused.solve(&rhs).unwrap();
            let xf = fresh.solve(&rhs).unwrap();
            assert_eq!(bits(&xr), bits(&xf), "n={n}: solutions differ");
        }
    }

    #[test]
    fn refactor_replays_non_trivial_permutation() {
        // [[0, b], [c, 0]] forces off-diagonal pivots; the frozen
        // permutation must keep working for new values.
        let build = |b: f64, c: f64| {
            let mut tb = TripletBuilder::new(2, 2);
            tb.push(0, 1, b);
            tb.push(1, 0, c);
            tb.to_csc()
        };
        let mut lu = SparseLu::new(&build(1.0, 1.0)).unwrap();
        let a2 = build(2.0, -3.0);
        lu.refactor(&a2).unwrap();
        let x = lu.solve(&[4.0, 6.0]).unwrap();
        // 2·x1 = 4 and −3·x0 = 6.
        assert_eq!(x, vec![-2.0, 2.0]);
    }

    #[test]
    fn refactor_rejects_pattern_change() {
        let mut lu =
            SparseLu::new(&dense_to_builder(&[&[2.0, 1.0][..], &[0.0, 3.0][..]]).to_csc()).unwrap();
        let other = dense_to_builder(&[&[2.0, 0.0][..], &[1.0, 3.0][..]]).to_csc();
        assert!(!lu.pattern_matches(&other));
        assert!(matches!(
            lu.refactor(&other),
            Err(NumericError::InvalidInput(_))
        ));
        let wide = TripletBuilder::new(2, 3).to_csc();
        assert!(matches!(
            lu.refactor(&wide),
            Err(NumericError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn refactor_detects_singular_pivot() {
        // Same pattern, but the new values make the matrix rank one: the
        // frozen second pivot collapses to ~0.
        let a1 = dense_to_builder(&[&[4.0, 1.0][..], &[1.0, 3.0][..]]).to_csc();
        let a2 = dense_to_builder(&[&[4.0, 1.0][..], &[4.0, 1.0][..]]).to_csc();
        assert!(a1.same_pattern(&a2));
        let mut lu = SparseLu::new(&a1).unwrap();
        assert!(matches!(
            lu.refactor(&a2),
            Err(NumericError::Singular { pivot: 1 })
        ));
        // The documented recovery path — a fresh factorization — also
        // reports the singularity (there is no rank-2 ordering to find).
        assert!(matches!(
            SparseLu::new(&a2),
            Err(NumericError::Singular { .. })
        ));
    }

    #[test]
    fn matches_dense_on_random_systems() {
        use crate::dense::DenseMatrix;
        use crate::lu::LuFactor;
        let mut state = 0xdeadbeefcafef00du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        for n in [3usize, 8, 16] {
            let mut dm = DenseMatrix::zeros(n, n);
            let mut tb = TripletBuilder::new(n, n);
            for i in 0..n {
                for j in 0..n {
                    // ~40% sparsity plus strong diagonal.
                    let v = next();
                    if i == j || v.abs() > 0.3 {
                        let val = if i == j { v + 3.0 } else { v };
                        dm[(i, j)] = val;
                        tb.push(i, j, val);
                    }
                }
            }
            let rhs: Vec<f64> = (0..n).map(|_| next()).collect();
            let xd = LuFactor::new(&dm).unwrap().solve(&rhs).unwrap();
            let xs = SparseLu::new(&tb.to_csc()).unwrap().solve(&rhs).unwrap();
            for (a, b) in xd.iter().zip(&xs) {
                assert!((a - b).abs() < 1e-9, "n={n}: {a} vs {b}");
            }
        }
    }
}
