//! Left-looking (Gilbert–Peierls) sparse LU factorization with partial
//! pivoting.
//!
//! The simulator uses the dense solver for small systems and switches to this
//! factorization above a node-count threshold; the `dense vs sparse` ablation
//! bench quantifies the crossover on ladder networks.

use crate::sparse::SparseMatrix;
use crate::NumericError;

/// Sparse LU factors of a square [`SparseMatrix`], `P·A = L·U`.
///
/// # Example
///
/// ```
/// use gabm_numeric::{SparseLu, TripletBuilder};
///
/// # fn main() -> Result<(), gabm_numeric::NumericError> {
/// let mut b = TripletBuilder::new(2, 2);
/// b.push(0, 0, 4.0);
/// b.push(0, 1, 1.0);
/// b.push(1, 0, 1.0);
/// b.push(1, 1, 3.0);
/// let lu = SparseLu::new(&b.to_csc())?;
/// let x = lu.solve(&[1.0, 2.0])?;
/// assert!((4.0 * x[0] + x[1] - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SparseLu {
    n: usize,
    // L in CSC without the unit diagonal.
    l_col_ptr: Vec<usize>,
    l_row_idx: Vec<usize>,
    l_values: Vec<f64>,
    // U in CSC, diagonal entry last in each column.
    u_col_ptr: Vec<usize>,
    u_row_idx: Vec<usize>,
    u_values: Vec<f64>,
    /// `perm[i]` = original row placed at position `i`.
    perm: Vec<usize>,
}

const PIVOT_EPS: f64 = 1e-13;

impl SparseLu {
    /// Factorizes `a` column by column with partial pivoting.
    ///
    /// # Errors
    ///
    /// * [`NumericError::DimensionMismatch`] if `a` is not square.
    /// * [`NumericError::Singular`] if a column yields no usable pivot.
    pub fn new(a: &SparseMatrix) -> Result<Self, NumericError> {
        if a.rows() != a.cols() {
            return Err(NumericError::DimensionMismatch {
                expected: a.rows(),
                found: a.cols(),
            });
        }
        let n = a.rows();
        // pinv[original_row] = current position, or usize::MAX while the row
        // is not yet pivotal.
        let mut pinv = vec![usize::MAX; n];
        let mut perm = vec![usize::MAX; n];

        let mut l_col_ptr = vec![0usize];
        let mut l_row_idx: Vec<usize> = Vec::new();
        let mut l_values: Vec<f64> = Vec::new();
        let mut u_col_ptr = vec![0usize];
        let mut u_row_idx: Vec<usize> = Vec::new();
        let mut u_values: Vec<f64> = Vec::new();

        // Dense work vector + occupancy pattern per column.
        let mut work = vec![0.0f64; n];
        let mut pattern: Vec<usize> = Vec::with_capacity(n);
        let mut in_pattern = vec![false; n];
        // Explicit DFS stack: (original_row, next child index to visit).
        let mut stack: Vec<(usize, usize)> = Vec::new();

        #[allow(clippy::needless_range_loop)]
        for col in 0..n {
            // Symbolic step: the non-zero pattern of the solution of
            // L·x = A[:, col] is the set of nodes reachable in the graph of L
            // from the rows of A[:, col]. Depth-first search records them in
            // topological (reverse post-) order.
            pattern.clear();
            for (row, _) in a.col_iter(col) {
                if in_pattern[row] {
                    continue;
                }
                stack.push((row, 0));
                in_pattern[row] = true;
                while let Some(&mut (r, ref mut child)) = stack.last_mut() {
                    // Children of r are the L entries of the pivotal column
                    // owning r (if r is pivotal).
                    let pos = pinv[r];
                    let mut advanced = false;
                    if pos != usize::MAX {
                        let (lo, hi) = (l_col_ptr[pos], l_col_ptr[pos + 1]);
                        while *child < hi - lo {
                            let next_row = l_row_idx[lo + *child];
                            *child += 1;
                            if !in_pattern[next_row] {
                                in_pattern[next_row] = true;
                                stack.push((next_row, 0));
                                advanced = true;
                                break;
                            }
                        }
                    }
                    if !advanced {
                        stack.pop();
                        pattern.push(r);
                    }
                }
            }
            // pattern is now in topological order for the numeric sweep when
            // traversed from the end (roots last ⇒ reverse gives dependencies
            // first).
            for (row, v) in a.col_iter(col) {
                work[row] = v;
            }
            for &r in pattern.iter().rev() {
                let pos = pinv[r];
                if pos == usize::MAX {
                    continue;
                }
                let xr = work[r];
                if xr == 0.0 {
                    continue;
                }
                let (lo, hi) = (l_col_ptr[pos], l_col_ptr[pos + 1]);
                for k in lo..hi {
                    work[l_row_idx[k]] -= l_values[k] * xr;
                }
            }
            // Pivot selection among not-yet-pivotal rows in the pattern.
            let mut pivot_row = usize::MAX;
            let mut pivot_mag = 0.0f64;
            for &r in &pattern {
                if pinv[r] == usize::MAX {
                    let m = work[r].abs();
                    if m > pivot_mag {
                        pivot_mag = m;
                        pivot_row = r;
                    }
                }
            }
            if pivot_row == usize::MAX || pivot_mag < PIVOT_EPS {
                return Err(NumericError::Singular { pivot: col });
            }
            let pivot_val = work[pivot_row];
            pinv[pivot_row] = col;
            perm[col] = pivot_row;
            // Emit U column: pivotal rows, then the diagonal (pivot) last.
            for &r in &pattern {
                let pos = pinv[r];
                if pos != usize::MAX && r != pivot_row && work[r] != 0.0 {
                    u_row_idx.push(pos);
                    u_values.push(work[r]);
                }
            }
            u_row_idx.push(col);
            u_values.push(pivot_val);
            u_col_ptr.push(u_row_idx.len());
            // Emit L column: non-pivotal rows scaled by the pivot.
            for &r in &pattern {
                if pinv[r] == usize::MAX && work[r] != 0.0 {
                    l_row_idx.push(r);
                    l_values.push(work[r] / pivot_val);
                }
            }
            l_col_ptr.push(l_row_idx.len());
            // Reset work/pattern.
            for &r in &pattern {
                work[r] = 0.0;
                in_pattern[r] = false;
            }
        }
        Ok(SparseLu {
            n,
            l_col_ptr,
            l_row_idx,
            l_values,
            u_col_ptr,
            u_row_idx,
            u_values,
            perm,
        })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Fill-in: total stored entries in `L` and `U`.
    pub fn factor_nnz(&self) -> usize {
        self.l_values.len() + self.u_values.len()
    }

    /// Solves `A·x = b`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::DimensionMismatch`] if `b.len() != dim()`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, NumericError> {
        if b.len() != self.n {
            return Err(NumericError::DimensionMismatch {
                expected: self.n,
                found: b.len(),
            });
        }
        // Forward solve L·y = b. L's column k eliminates into original row
        // indices; track the solution on original rows.
        let mut y = b.to_vec();
        for k in 0..self.n {
            let yk = y[self.perm[k]];
            if yk == 0.0 {
                continue;
            }
            let (lo, hi) = (self.l_col_ptr[k], self.l_col_ptr[k + 1]);
            for i in lo..hi {
                y[self.l_row_idx[i]] -= self.l_values[i] * yk;
            }
        }
        // Gather into pivotal order.
        let mut x: Vec<f64> = (0..self.n).map(|k| y[self.perm[k]]).collect();
        // Backward solve U·x = y. U columns have the diagonal last.
        for k in (0..self.n).rev() {
            let (lo, hi) = (self.u_col_ptr[k], self.u_col_ptr[k + 1]);
            let diag = self.u_values[hi - 1];
            let xk = x[k] / diag;
            x[k] = xk;
            if xk == 0.0 {
                continue;
            }
            for i in lo..(hi - 1) {
                x[self.u_row_idx[i]] -= self.u_values[i] * xk;
            }
        }
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::TripletBuilder;

    fn dense_to_builder(rows: &[&[f64]]) -> TripletBuilder {
        let mut b = TripletBuilder::new(rows.len(), rows[0].len());
        for (i, r) in rows.iter().enumerate() {
            for (j, &v) in r.iter().enumerate() {
                if v != 0.0 {
                    b.push(i, j, v);
                }
            }
        }
        b
    }

    fn check_solution(rows: &[&[f64]], b: &[f64]) {
        let m = dense_to_builder(rows).to_csc();
        let lu = SparseLu::new(&m).unwrap();
        let x = lu.solve(b).unwrap();
        let r = m.mul_vec(&x).unwrap();
        for (ri, bi) in r.iter().zip(b) {
            assert!((ri - bi).abs() < 1e-9, "residual too large: {ri} vs {bi}");
        }
    }

    #[test]
    fn solve_2x2() {
        check_solution(&[&[4.0, 1.0][..], &[1.0, 3.0][..]], &[1.0, 2.0]);
    }

    #[test]
    fn requires_pivoting() {
        check_solution(&[&[0.0, 1.0][..], &[1.0, 0.0][..]], &[5.0, 7.0]);
    }

    #[test]
    fn tridiagonal_ladder() {
        // RC-ladder-like tridiagonal system.
        let n = 50;
        let mut b = TripletBuilder::new(n, n);
        for i in 0..n {
            b.push(i, i, 2.0);
            if i > 0 {
                b.push(i, i - 1, -1.0);
            }
            if i + 1 < n {
                b.push(i, i + 1, -1.0);
            }
        }
        let m = b.to_csc();
        let lu = SparseLu::new(&m).unwrap();
        let rhs = vec![1.0; n];
        let x = lu.solve(&rhs).unwrap();
        let r = m.mul_vec(&x).unwrap();
        for (ri, bi) in r.iter().zip(&rhs) {
            assert!((ri - bi).abs() < 1e-9);
        }
        // Tridiagonal factors stay narrow: fill-in bounded by 3 per column.
        assert!(lu.factor_nnz() <= 3 * n);
    }

    #[test]
    fn detects_singular() {
        let m = dense_to_builder(&[&[1.0, 2.0][..], &[2.0, 4.0][..]]).to_csc();
        assert!(matches!(
            SparseLu::new(&m),
            Err(NumericError::Singular { .. })
        ));
    }

    #[test]
    fn structurally_singular_column() {
        let mut b = TripletBuilder::new(2, 2);
        b.push(0, 0, 1.0);
        // Column 1 completely empty.
        let m = b.to_csc();
        assert!(matches!(
            SparseLu::new(&m),
            Err(NumericError::Singular { .. })
        ));
    }

    #[test]
    fn rejects_non_square() {
        let b = TripletBuilder::new(2, 3);
        assert!(matches!(
            SparseLu::new(&b.to_csc()),
            Err(NumericError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn matches_dense_on_random_systems() {
        use crate::dense::DenseMatrix;
        use crate::lu::LuFactor;
        let mut state = 0xdeadbeefcafef00du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        for n in [3usize, 8, 16] {
            let mut dm = DenseMatrix::zeros(n, n);
            let mut tb = TripletBuilder::new(n, n);
            for i in 0..n {
                for j in 0..n {
                    // ~40% sparsity plus strong diagonal.
                    let v = next();
                    if i == j || v.abs() > 0.3 {
                        let val = if i == j { v + 3.0 } else { v };
                        dm[(i, j)] = val;
                        tb.push(i, j, val);
                    }
                }
            }
            let rhs: Vec<f64> = (0..n).map(|_| next()).collect();
            let xd = LuFactor::new(&dm).unwrap().solve(&rhs).unwrap();
            let xs = SparseLu::new(&tb.to_csc()).unwrap().solve(&rhs).unwrap();
            for (a, b) in xd.iter().zip(&xs) {
                assert!((a - b).abs() < 1e-9, "n={n}: {a} vs {b}");
            }
        }
    }
}
