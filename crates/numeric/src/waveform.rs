//! Sampled signals on a (possibly non-uniform) time grid.
//!
//! A [`Waveform`] is the exchange currency between the transient engine, the
//! measurement routines of [`crate::measure`], and the figure harness that
//! regenerates the paper's waveform plots (Fig. 7).

use crate::interp;
use crate::NumericError;

/// A real-valued signal sampled at strictly increasing instants.
///
/// # Example
///
/// ```
/// use gabm_numeric::Waveform;
///
/// # fn main() -> Result<(), gabm_numeric::NumericError> {
/// let w = Waveform::from_samples(vec![0.0, 1.0, 2.0], vec![0.0, 1.0, 0.0])?;
/// assert_eq!(w.value_at(0.5)?, 0.5);
/// assert_eq!(w.len(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Waveform {
    times: Vec<f64>,
    values: Vec<f64>,
}

impl Waveform {
    /// Creates an empty waveform.
    pub fn new() -> Self {
        Waveform::default()
    }

    /// Builds a waveform from parallel sample vectors.
    ///
    /// # Errors
    ///
    /// * [`NumericError::DimensionMismatch`] if lengths differ.
    /// * [`NumericError::InvalidInput`] if times are not strictly increasing.
    pub fn from_samples(times: Vec<f64>, values: Vec<f64>) -> Result<Self, NumericError> {
        if times.len() != values.len() {
            return Err(NumericError::DimensionMismatch {
                expected: times.len(),
                found: values.len(),
            });
        }
        if times.windows(2).any(|w| w[1] <= w[0]) {
            return Err(NumericError::InvalidInput(
                "sample times must be strictly increasing".into(),
            ));
        }
        Ok(Waveform { times, values })
    }

    /// Samples `f` uniformly on `[t0, t1]` with `n` points (`n >= 2`).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `t1 <= t0`.
    pub fn from_fn(t0: f64, t1: f64, n: usize, mut f: impl FnMut(f64) -> f64) -> Self {
        assert!(n >= 2, "need at least two samples");
        assert!(t1 > t0, "t1 must exceed t0");
        let dt = (t1 - t0) / (n - 1) as f64;
        let times: Vec<f64> = (0..n).map(|k| t0 + k as f64 * dt).collect();
        let values = times.iter().map(|&t| f(t)).collect();
        Waveform { times, values }
    }

    /// Appends a sample.
    ///
    /// # Panics
    ///
    /// Panics if `t` does not exceed the last stored time.
    pub fn push(&mut self, t: f64, v: f64) {
        if let Some(&last) = self.times.last() {
            assert!(t > last, "time {t} does not advance past {last}");
        }
        self.times.push(t);
        self.values.push(v);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Returns `true` if the waveform holds no samples.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Sample times.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Sample values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// First sample time.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::Empty`] for an empty waveform.
    pub fn t_start(&self) -> Result<f64, NumericError> {
        self.times.first().copied().ok_or(NumericError::Empty)
    }

    /// Last sample time.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::Empty`] for an empty waveform.
    pub fn t_end(&self) -> Result<f64, NumericError> {
        self.times.last().copied().ok_or(NumericError::Empty)
    }

    /// Linearly interpolated value at `t` (clamped outside the domain).
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::Empty`] for an empty waveform.
    pub fn value_at(&self, t: f64) -> Result<f64, NumericError> {
        interp::linear(&self.times, &self.values, t)
    }

    /// Minimum sample value.
    pub fn min(&self) -> f64 {
        self.values.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Maximum sample value.
    pub fn max(&self) -> f64 {
        self.values
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Resamples onto a uniform grid of `n` points spanning the waveform.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::Empty`] for an empty waveform or
    /// [`NumericError::InvalidInput`] for `n < 2`.
    pub fn resample(&self, n: usize) -> Result<Waveform, NumericError> {
        if self.is_empty() {
            return Err(NumericError::Empty);
        }
        if n < 2 {
            return Err(NumericError::InvalidInput(
                "resampling needs at least two points".into(),
            ));
        }
        let t0 = self.times[0];
        let t1 = self.times[self.times.len() - 1];
        let dt = (t1 - t0) / (n - 1) as f64;
        let grid: Vec<f64> = (0..n).map(|k| t0 + k as f64 * dt).collect();
        let values = interp::resample(&self.times, &self.values, &grid)?;
        Ok(Waveform {
            times: grid,
            values,
        })
    }

    /// Pointwise combination with another waveform on this waveform's grid.
    ///
    /// # Errors
    ///
    /// Propagates interpolation errors (e.g. empty operand).
    pub fn zip_with(
        &self,
        other: &Waveform,
        mut f: impl FnMut(f64, f64) -> f64,
    ) -> Result<Waveform, NumericError> {
        let mut out = Waveform::new();
        for (&t, &v) in self.times.iter().zip(&self.values) {
            out.push(t, f(v, other.value_at(t)?));
        }
        Ok(out)
    }

    /// Root-mean-square difference against `other`, evaluated on this grid.
    /// Used to assert behavioural-vs-circuit waveform agreement (Fig. 7).
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::Empty`] if either waveform is empty.
    pub fn rms_difference(&self, other: &Waveform) -> Result<f64, NumericError> {
        if self.is_empty() || other.is_empty() {
            return Err(NumericError::Empty);
        }
        let diff = self.zip_with(other, |a, b| (a - b) * (a - b))?;
        let mean = diff.values.iter().sum::<f64>() / diff.len() as f64;
        Ok(mean.sqrt())
    }

    /// Serializes the waveform as CSV rows `time,value` (with header).
    pub fn to_csv(&self, name: &str) -> String {
        let mut s = format!("time,{name}\n");
        for (t, v) in self.times.iter().zip(&self.values) {
            s.push_str(&format!("{t:.9e},{v:.9e}\n"));
        }
        s
    }
}

impl FromIterator<(f64, f64)> for Waveform {
    /// Collects `(time, value)` pairs; panics (via [`Waveform::push`]) if the
    /// times do not strictly increase.
    fn from_iter<I: IntoIterator<Item = (f64, f64)>>(iter: I) -> Self {
        let mut w = Waveform::new();
        for (t, v) in iter {
            w.push(t, v);
        }
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_validation() {
        let w = Waveform::from_samples(vec![0.0, 1.0], vec![1.0, 2.0]).unwrap();
        assert_eq!(w.len(), 2);
        assert!(!w.is_empty());
        assert!(Waveform::from_samples(vec![0.0, 0.0], vec![1.0, 2.0]).is_err());
        assert!(Waveform::from_samples(vec![0.0], vec![1.0, 2.0]).is_err());
    }

    #[test]
    fn from_fn_samples_uniformly() {
        let w = Waveform::from_fn(0.0, 1.0, 11, |t| 2.0 * t);
        assert_eq!(w.len(), 11);
        assert!((w.value_at(0.5).unwrap() - 1.0).abs() < 1e-12);
        assert_eq!(w.t_start().unwrap(), 0.0);
        assert_eq!(w.t_end().unwrap(), 1.0);
    }

    #[test]
    #[should_panic(expected = "does not advance")]
    fn push_requires_increasing_time() {
        let mut w = Waveform::new();
        w.push(1.0, 0.0);
        w.push(1.0, 0.0);
    }

    #[test]
    fn min_max() {
        let w = Waveform::from_fn(0.0, 1.0, 101, |t| (2.0 * std::f64::consts::PI * t).sin());
        assert!((w.max() - 1.0).abs() < 1e-3);
        assert!((w.min() + 1.0).abs() < 1e-3);
    }

    #[test]
    fn resample_preserves_shape() {
        let w = Waveform::from_fn(0.0, 1.0, 100, |t| t * t);
        let r = w.resample(13).unwrap();
        assert_eq!(r.len(), 13);
        assert!((r.value_at(0.5).unwrap() - 0.25).abs() < 1e-3);
        assert!(w.resample(1).is_err());
        assert!(Waveform::new().resample(5).is_err());
    }

    #[test]
    fn zip_with_and_rms() {
        let a = Waveform::from_fn(0.0, 1.0, 50, |_| 1.0);
        let b = Waveform::from_fn(0.0, 1.0, 77, |_| 0.0);
        let d = a.zip_with(&b, |x, y| x - y).unwrap();
        assert!((d.max() - 1.0).abs() < 1e-12);
        assert!((a.rms_difference(&b).unwrap() - 1.0).abs() < 1e-12);
        assert!((a.rms_difference(&a).unwrap()).abs() < 1e-12);
    }

    #[test]
    fn csv_export() {
        let w = Waveform::from_samples(vec![0.0, 1.0], vec![1.0, 2.0]).unwrap();
        let csv = w.to_csv("vout");
        assert!(csv.starts_with("time,vout\n"));
        assert_eq!(csv.lines().count(), 3);
    }

    #[test]
    fn collect_from_pairs() {
        let w: Waveform = (0..5).map(|k| (k as f64, (k * k) as f64)).collect();
        assert_eq!(w.len(), 5);
        assert_eq!(w.values()[3], 9.0);
    }

    #[test]
    fn empty_waveform_errors() {
        let w = Waveform::new();
        assert!(matches!(w.t_start(), Err(NumericError::Empty)));
        assert!(matches!(w.value_at(0.0), Err(NumericError::Empty)));
    }
}
