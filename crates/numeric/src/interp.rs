//! Interpolation over sampled data.
//!
//! Transient results are sampled on the *variable* time grid the step
//! controller produced; the measurement routines and the waveform comparison
//! of Fig. 7 need values at arbitrary instants and on common grids, hence
//! linear and monotone-cubic (Fritsch–Carlson) interpolation.

use crate::NumericError;

/// Validates that `xs` is strictly increasing and matches `ys` in length.
fn validate(xs: &[f64], ys: &[f64]) -> Result<(), NumericError> {
    if xs.is_empty() {
        return Err(NumericError::Empty);
    }
    if xs.len() != ys.len() {
        return Err(NumericError::DimensionMismatch {
            expected: xs.len(),
            found: ys.len(),
        });
    }
    if xs.windows(2).any(|w| w[1] <= w[0]) {
        return Err(NumericError::InvalidInput(
            "abscissae must be strictly increasing".into(),
        ));
    }
    Ok(())
}

/// Linear interpolation of `(xs, ys)` at `x`, clamping outside the domain.
///
/// # Errors
///
/// See [`pchip`] — same validation rules.
pub fn linear(xs: &[f64], ys: &[f64], x: f64) -> Result<f64, NumericError> {
    validate(xs, ys)?;
    if x <= xs[0] {
        return Ok(ys[0]);
    }
    if x >= xs[xs.len() - 1] {
        return Ok(ys[ys.len() - 1]);
    }
    let i = match xs.partition_point(|&v| v <= x) {
        0 => 0,
        p => p - 1,
    };
    let t = (x - xs[i]) / (xs[i + 1] - xs[i]);
    Ok(ys[i] + t * (ys[i + 1] - ys[i]))
}

/// Monotone cubic (PCHIP / Fritsch–Carlson) interpolation at `x`.
///
/// Preserves monotonicity of the data — important when measuring rise times
/// on waveforms with sparse samples, where a plain cubic would overshoot and
/// produce phantom threshold crossings.
///
/// # Errors
///
/// * [`NumericError::Empty`] for empty inputs.
/// * [`NumericError::DimensionMismatch`] if lengths differ.
/// * [`NumericError::InvalidInput`] if `xs` is not strictly increasing.
pub fn pchip(xs: &[f64], ys: &[f64], x: f64) -> Result<f64, NumericError> {
    validate(xs, ys)?;
    let n = xs.len();
    if n == 1 || x <= xs[0] {
        return Ok(ys[0]);
    }
    if x >= xs[n - 1] {
        return Ok(ys[n - 1]);
    }
    if n == 2 {
        return linear(xs, ys, x);
    }
    let i = match xs.partition_point(|&v| v <= x) {
        0 => 0,
        p => (p - 1).min(n - 2),
    };
    // Secant slopes around interval i.
    let h = xs[i + 1] - xs[i];
    let d = |k: usize| (ys[k + 1] - ys[k]) / (xs[k + 1] - xs[k]);
    let tangent = |k: usize| -> f64 {
        // Fritsch–Carlson limited tangents.
        if k == 0 {
            d(0)
        } else if k == n - 1 {
            d(n - 2)
        } else {
            let dl = d(k - 1);
            let dr = d(k);
            if dl * dr <= 0.0 {
                0.0
            } else {
                // Weighted harmonic mean respects uneven spacing.
                let hl = xs[k] - xs[k - 1];
                let hr = xs[k + 1] - xs[k];
                let w1 = 2.0 * hr + hl;
                let w2 = hr + 2.0 * hl;
                (w1 + w2) / (w1 / dl + w2 / dr)
            }
        }
    };
    let m0 = tangent(i);
    let m1 = tangent(i + 1);
    let t = (x - xs[i]) / h;
    let t2 = t * t;
    let t3 = t2 * t;
    let h00 = 2.0 * t3 - 3.0 * t2 + 1.0;
    let h10 = t3 - 2.0 * t2 + t;
    let h01 = -2.0 * t3 + 3.0 * t2;
    let h11 = t3 - t2;
    Ok(h00 * ys[i] + h10 * h * m0 + h01 * ys[i + 1] + h11 * h * m1)
}

/// Resamples `(xs, ys)` onto `grid` with linear interpolation.
///
/// # Errors
///
/// Propagates the validation errors of [`linear`].
pub fn resample(xs: &[f64], ys: &[f64], grid: &[f64]) -> Result<Vec<f64>, NumericError> {
    grid.iter().map(|&g| linear(xs, ys, g)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_basic() {
        let xs = [0.0, 1.0, 2.0];
        let ys = [0.0, 10.0, 0.0];
        assert_eq!(linear(&xs, &ys, 0.5).unwrap(), 5.0);
        assert_eq!(linear(&xs, &ys, 1.5).unwrap(), 5.0);
        // Clamping.
        assert_eq!(linear(&xs, &ys, -1.0).unwrap(), 0.0);
        assert_eq!(linear(&xs, &ys, 3.0).unwrap(), 0.0);
        // Exact knots.
        assert_eq!(linear(&xs, &ys, 1.0).unwrap(), 10.0);
    }

    #[test]
    fn validation_errors() {
        assert!(matches!(linear(&[], &[], 0.0), Err(NumericError::Empty)));
        assert!(matches!(
            linear(&[0.0, 1.0], &[0.0], 0.5),
            Err(NumericError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            linear(&[0.0, 0.0], &[1.0, 2.0], 0.0),
            Err(NumericError::InvalidInput(_))
        ));
    }

    #[test]
    fn pchip_interpolates_knots() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys = [0.0, 1.0, 4.0, 9.0];
        for (x, y) in xs.iter().zip(&ys) {
            assert!((pchip(&xs, &ys, *x).unwrap() - y).abs() < 1e-14);
        }
    }

    #[test]
    fn pchip_monotone_no_overshoot() {
        // A step-like data set: a classic cubic spline overshoots, PCHIP must
        // not.
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0];
        let ys = [0.0, 0.0, 1.0, 1.0, 1.0];
        let mut prev = -1.0;
        for k in 0..=400 {
            let x = 4.0 * k as f64 / 400.0;
            let y = pchip(&xs, &ys, x).unwrap();
            assert!((-1e-12..=1.0 + 1e-12).contains(&y), "overshoot at {x}: {y}");
            assert!(y >= prev - 1e-12, "non-monotone at {x}");
            prev = y;
        }
    }

    #[test]
    fn pchip_two_points_is_linear() {
        let xs = [0.0, 2.0];
        let ys = [0.0, 4.0];
        assert!((pchip(&xs, &ys, 1.0).unwrap() - 2.0).abs() < 1e-14);
    }

    #[test]
    fn pchip_single_point() {
        assert_eq!(pchip(&[1.0], &[7.0], 0.0).unwrap(), 7.0);
        assert_eq!(pchip(&[1.0], &[7.0], 5.0).unwrap(), 7.0);
    }

    #[test]
    fn resample_onto_grid() {
        let xs = [0.0, 1.0];
        let ys = [0.0, 2.0];
        let grid = [0.0, 0.25, 0.5, 1.0];
        assert_eq!(resample(&xs, &ys, &grid).unwrap(), vec![0.0, 0.5, 1.0, 2.0]);
    }
}
