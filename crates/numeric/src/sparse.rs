//! Compressed sparse column (CSC) matrices and a coordinate (triplet)
//! builder.
//!
//! Circuit matrices are assembled by *stamping*: each device adds a handful of
//! entries at fixed positions. The [`TripletBuilder`] accepts duplicate
//! coordinates and sums them on conversion, which makes stamping trivial; the
//! resulting [`SparseMatrix`] is consumed by the sparse LU in [`crate::splu`].

use crate::NumericError;

/// Coordinate-format builder for sparse matrices.
///
/// Duplicate `(row, col)` entries are summed when converting to CSC, matching
/// the accumulate-semantics of MNA stamps.
///
/// # Example
///
/// ```
/// use gabm_numeric::TripletBuilder;
///
/// let mut b = TripletBuilder::new(2, 2);
/// b.push(0, 0, 1.0);
/// b.push(0, 0, 2.0); // duplicates accumulate
/// b.push(1, 1, 5.0);
/// let m = b.to_csc();
/// assert_eq!(m.get(0, 0), 3.0);
/// assert_eq!(m.nnz(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TripletBuilder {
    rows: usize,
    cols: usize,
    entries: Vec<(usize, usize, f64)>,
}

impl TripletBuilder {
    /// Creates an empty builder for a `rows × cols` matrix.
    pub fn new(rows: usize, cols: usize) -> Self {
        TripletBuilder {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Adds `value` at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is out of bounds.
    pub fn push(&mut self, row: usize, col: usize, value: f64) {
        assert!(
            row < self.rows && col < self.cols,
            "triplet ({row}, {col}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        self.entries.push((row, col, value));
    }

    /// Number of raw (pre-deduplication) entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no entries have been pushed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Discards all entries, keeping the allocation.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Converts to compressed sparse column form, summing duplicates.
    pub fn to_csc(&self) -> SparseMatrix {
        // Count entries per column after an in-column sort; do a simple
        // sort of a copy (assembly is not the hot path — factorization is).
        let mut sorted = self.entries.clone();
        sorted.sort_by_key(|&(r, c, _)| (c, r));
        let mut col_ptr = vec![0usize; self.cols + 1];
        let mut row_idx = Vec::with_capacity(sorted.len());
        let mut values = Vec::with_capacity(sorted.len());
        let mut it = sorted.into_iter().peekable();
        #[allow(clippy::needless_range_loop)]
        for col in 0..self.cols {
            col_ptr[col] = row_idx.len();
            while let Some(&(r, c, _)) = it.peek() {
                if c != col {
                    break;
                }
                let mut sum = 0.0;
                while let Some(&(r2, c2, v2)) = it.peek() {
                    if r2 == r && c2 == c {
                        sum += v2;
                        it.next();
                    } else {
                        break;
                    }
                }
                row_idx.push(r);
                values.push(sum);
            }
        }
        col_ptr[self.cols] = row_idx.len();
        SparseMatrix {
            rows: self.rows,
            cols: self.cols,
            col_ptr,
            row_idx,
            values,
        }
    }
}

/// A real matrix in compressed sparse column format.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseMatrix {
    rows: usize,
    cols: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    values: Vec<f64>,
}

impl SparseMatrix {
    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of structurally non-zero entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Returns the entry at `(row, col)`, or `0.0` if structurally absent.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        let (lo, hi) = (self.col_ptr[col], self.col_ptr[col + 1]);
        match self.row_idx[lo..hi].binary_search(&row) {
            Ok(pos) => self.values[lo + pos],
            Err(_) => 0.0,
        }
    }

    /// Column pointer array of the CSC layout (`cols + 1` entries).
    pub fn col_ptr(&self) -> &[usize] {
        &self.col_ptr
    }

    /// Row index of every structural entry, column-major.
    pub fn row_indices(&self) -> &[usize] {
        &self.row_idx
    }

    /// `true` if `other` has exactly the same dimensions and structural
    /// pattern (column pointers and row indices); values are ignored.
    ///
    /// MNA assembly pushes a triplet for every stamp position on every
    /// Newton iteration — including explicit zeros — so the pattern of a
    /// circuit matrix is stable across iterations and time steps. This
    /// check is what lets [`crate::SparseLu::refactor`] reuse a symbolic
    /// analysis safely.
    pub fn same_pattern(&self, other: &SparseMatrix) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self.col_ptr == other.col_ptr
            && self.row_idx == other.row_idx
    }

    /// Iterates over the structural entries of column `col` as
    /// `(row, value)` pairs.
    pub fn col_iter(&self, col: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let (lo, hi) = (self.col_ptr[col], self.col_ptr[col + 1]);
        self.row_idx[lo..hi]
            .iter()
            .copied()
            .zip(self.values[lo..hi].iter().copied())
    }

    /// Matrix–vector product `A·x`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::DimensionMismatch`] if `x.len() != cols`.
    pub fn mul_vec(&self, x: &[f64]) -> Result<Vec<f64>, NumericError> {
        if x.len() != self.cols {
            return Err(NumericError::DimensionMismatch {
                expected: self.cols,
                found: x.len(),
            });
        }
        let mut y = vec![0.0; self.rows];
        #[allow(clippy::needless_range_loop)]
        for col in 0..self.cols {
            let xc = x[col];
            if xc == 0.0 {
                continue;
            }
            for (row, v) in self.col_iter(col) {
                y[row] += v * xc;
            }
        }
        Ok(y)
    }

    /// Density as a fraction of a full matrix (diagnostic for the ablation
    /// benches comparing dense vs sparse factorization).
    pub fn density(&self) -> f64 {
        if self.rows == 0 || self.cols == 0 {
            0.0
        } else {
            self.nnz() as f64 / (self.rows as f64 * self.cols as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_duplicates() {
        let mut b = TripletBuilder::new(3, 3);
        b.push(0, 0, 1.0);
        b.push(0, 0, -0.25);
        b.push(2, 1, 4.0);
        let m = b.to_csc();
        assert_eq!(m.get(0, 0), 0.75);
        assert_eq!(m.get(2, 1), 4.0);
        assert_eq!(m.get(1, 1), 0.0);
        assert_eq!(m.nnz(), 2);
    }

    #[test]
    fn builder_clear_and_len() {
        let mut b = TripletBuilder::new(2, 2);
        assert!(b.is_empty());
        b.push(0, 1, 1.0);
        assert_eq!(b.len(), 1);
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.to_csc().nnz(), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn push_out_of_bounds_panics() {
        let mut b = TripletBuilder::new(1, 1);
        b.push(0, 1, 1.0);
    }

    #[test]
    fn same_pattern_ignores_values() {
        let mut a = TripletBuilder::new(2, 2);
        a.push(0, 0, 1.0);
        a.push(1, 1, 2.0);
        let mut b = TripletBuilder::new(2, 2);
        b.push(0, 0, -7.0);
        b.push(1, 1, 0.0); // explicit zero is still structural
        let (ma, mb) = (a.to_csc(), b.to_csc());
        assert!(ma.same_pattern(&mb));
        let mut c = TripletBuilder::new(2, 2);
        c.push(0, 0, 1.0);
        c.push(0, 1, 2.0);
        assert!(!ma.same_pattern(&c.to_csc()));
        assert_eq!(ma.col_ptr(), &[0, 1, 2]);
        assert_eq!(ma.row_indices(), &[0, 1]);
    }

    #[test]
    fn mat_vec() {
        let mut b = TripletBuilder::new(2, 3);
        b.push(0, 0, 1.0);
        b.push(0, 2, 2.0);
        b.push(1, 1, 3.0);
        let m = b.to_csc();
        let y = m.mul_vec(&[1.0, 1.0, 1.0]).unwrap();
        assert_eq!(y, vec![3.0, 3.0]);
        assert!(m.mul_vec(&[1.0]).is_err());
    }

    #[test]
    fn density() {
        let mut b = TripletBuilder::new(2, 2);
        b.push(0, 0, 1.0);
        let m = b.to_csc();
        assert_eq!(m.density(), 0.25);
    }

    #[test]
    fn col_iter_sorted_by_row() {
        let mut b = TripletBuilder::new(4, 1);
        b.push(3, 0, 3.0);
        b.push(1, 0, 1.0);
        let m = b.to_csc();
        let col: Vec<_> = m.col_iter(0).collect();
        assert_eq!(col, vec![(1, 1.0), (3, 3.0)]);
    }
}
