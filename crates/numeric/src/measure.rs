//! Waveform measurements.
//!
//! These are the primitives the characterization rigs (`gabm-charac`) use to
//! turn simulation traces into extracted parameters: threshold crossings,
//! rise/fall times, slew rate, overshoot, settling, RMS/average, and
//! propagation delay. They operate on [`Waveform`]s with linear
//! interpolation between samples, so measurements are step-size independent
//! to first order.

use crate::waveform::Waveform;
use crate::NumericError;

/// Direction of a threshold crossing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Edge {
    /// Signal passes the threshold from below.
    Rising,
    /// Signal passes the threshold from above.
    Falling,
    /// Either direction.
    Any,
}

/// Returns every instant at which `w` crosses `threshold` in the requested
/// direction, with linear interpolation between samples.
///
/// # Errors
///
/// Returns [`NumericError::Empty`] if the waveform has fewer than 2 samples.
pub fn crossings(w: &Waveform, threshold: f64, edge: Edge) -> Result<Vec<f64>, NumericError> {
    if w.len() < 2 {
        return Err(NumericError::Empty);
    }
    let ts = w.times();
    let vs = w.values();
    let mut out = Vec::new();
    for i in 0..ts.len() - 1 {
        let (v0, v1) = (vs[i] - threshold, vs[i + 1] - threshold);
        let rising = v0 < 0.0 && v1 >= 0.0;
        let falling = v0 > 0.0 && v1 <= 0.0;
        let hit = match edge {
            Edge::Rising => rising,
            Edge::Falling => falling,
            Edge::Any => rising || falling,
        };
        if hit {
            let frac = v0 / (v0 - v1);
            out.push(ts[i] + frac * (ts[i + 1] - ts[i]));
        }
    }
    Ok(out)
}

/// First crossing of `threshold` after `t_after`, if any.
///
/// # Errors
///
/// Propagates [`crossings`] errors.
pub fn first_crossing_after(
    w: &Waveform,
    threshold: f64,
    edge: Edge,
    t_after: f64,
) -> Result<Option<f64>, NumericError> {
    Ok(crossings(w, threshold, edge)?
        .into_iter()
        .find(|&t| t >= t_after))
}

/// 10 %→90 % rise time of the first rising transition.
///
/// The levels are taken between the waveform's own min and max, so the
/// measurement is amplitude-independent.
///
/// # Errors
///
/// * [`NumericError::Empty`] for a waveform with fewer than 2 samples.
/// * [`NumericError::InvalidInput`] if no complete rising transition exists.
pub fn rise_time(w: &Waveform) -> Result<f64, NumericError> {
    transition_time(w, Edge::Rising)
}

/// 90 %→10 % fall time of the first falling transition.
///
/// # Errors
///
/// Same conditions as [`rise_time`].
pub fn fall_time(w: &Waveform) -> Result<f64, NumericError> {
    transition_time(w, Edge::Falling)
}

fn transition_time(w: &Waveform, edge: Edge) -> Result<f64, NumericError> {
    let (lo, hi) = (w.min(), w.max());
    let span = hi - lo;
    if span <= 0.0 {
        return Err(NumericError::InvalidInput(
            "waveform has no amplitude".into(),
        ));
    }
    let l10 = lo + 0.1 * span;
    let l90 = lo + 0.9 * span;
    match edge {
        Edge::Rising => {
            let t10 = crossings(w, l10, Edge::Rising)?;
            let t90 = crossings(w, l90, Edge::Rising)?;
            for &a in &t10 {
                if let Some(&b) = t90.iter().find(|&&b| b > a) {
                    return Ok(b - a);
                }
            }
            Err(NumericError::InvalidInput(
                "no complete rising transition".into(),
            ))
        }
        Edge::Falling => {
            let t90 = crossings(w, l90, Edge::Falling)?;
            let t10 = crossings(w, l10, Edge::Falling)?;
            for &a in &t90 {
                if let Some(&b) = t10.iter().find(|&&b| b > a) {
                    return Ok(b - a);
                }
            }
            Err(NumericError::InvalidInput(
                "no complete falling transition".into(),
            ))
        }
        Edge::Any => unreachable!("transition_time is called with a definite edge"),
    }
}

/// Maximum slew rate (absolute d/dt over adjacent samples), the quantity the
/// slew-rate extraction rig reads off a large-signal step response.
///
/// # Errors
///
/// Returns [`NumericError::Empty`] for fewer than 2 samples.
pub fn max_slew_rate(w: &Waveform) -> Result<f64, NumericError> {
    if w.len() < 2 {
        return Err(NumericError::Empty);
    }
    let ts = w.times();
    let vs = w.values();
    let mut m: f64 = 0.0;
    for i in 0..ts.len() - 1 {
        let dt = ts[i + 1] - ts[i];
        if dt > 0.0 {
            m = m.max(((vs[i + 1] - vs[i]) / dt).abs());
        }
    }
    Ok(m)
}

/// Positive-going slew rate only (V/s); companion to [`max_slew_rate`] for
/// asymmetric limits (the paper's slew block has distinct rise and fall
/// rates).
///
/// # Errors
///
/// Returns [`NumericError::Empty`] for fewer than 2 samples.
pub fn max_rise_rate(w: &Waveform) -> Result<f64, NumericError> {
    directional_rate(w, true)
}

/// Negative-going slew rate magnitude (V/s).
///
/// # Errors
///
/// Returns [`NumericError::Empty`] for fewer than 2 samples.
pub fn max_fall_rate(w: &Waveform) -> Result<f64, NumericError> {
    directional_rate(w, false)
}

fn directional_rate(w: &Waveform, rising: bool) -> Result<f64, NumericError> {
    if w.len() < 2 {
        return Err(NumericError::Empty);
    }
    let ts = w.times();
    let vs = w.values();
    let mut m: f64 = 0.0;
    for i in 0..ts.len() - 1 {
        let dt = ts[i + 1] - ts[i];
        if dt <= 0.0 {
            continue;
        }
        let rate = (vs[i + 1] - vs[i]) / dt;
        if rising && rate > 0.0 {
            m = m.max(rate);
        } else if !rising && rate < 0.0 {
            m = m.max(-rate);
        }
    }
    Ok(m)
}

/// Overshoot of a step response relative to the final value, as a fraction of
/// the step amplitude (0.0 = none).
///
/// # Errors
///
/// Returns [`NumericError::Empty`] for an empty waveform or
/// [`NumericError::InvalidInput`] for zero step amplitude.
pub fn overshoot(w: &Waveform, initial: f64, fin: f64) -> Result<f64, NumericError> {
    if w.is_empty() {
        return Err(NumericError::Empty);
    }
    let amp = fin - initial;
    if amp == 0.0 {
        return Err(NumericError::InvalidInput("zero step amplitude".into()));
    }
    let peak = if amp > 0.0 { w.max() } else { w.min() };
    Ok(((peak - fin) / amp).max(0.0))
}

/// Time at which the waveform last leaves the `±band` envelope around
/// `fin` — i.e. the settling time (relative to the waveform start).
///
/// Returns `None` if the signal never settles within the band.
///
/// # Errors
///
/// Returns [`NumericError::Empty`] for an empty waveform.
pub fn settling_time(w: &Waveform, fin: f64, band: f64) -> Result<Option<f64>, NumericError> {
    if w.is_empty() {
        return Err(NumericError::Empty);
    }
    let ts = w.times();
    let vs = w.values();
    let mut last_outside: Option<f64> = None;
    for (t, v) in ts.iter().zip(vs) {
        if (v - fin).abs() > band {
            last_outside = Some(*t);
        }
    }
    match last_outside {
        None => Ok(Some(ts[0])),
        Some(t) if t < ts[ts.len() - 1] => Ok(Some(t)),
        _ => Ok(None),
    }
}

/// Time average of the waveform (trapezoidal integration over the grid).
///
/// # Errors
///
/// Returns [`NumericError::Empty`] for fewer than 2 samples.
pub fn average(w: &Waveform) -> Result<f64, NumericError> {
    integrate(w).map(|(integral, span)| integral / span)
}

/// RMS value of the waveform over its whole span.
///
/// # Errors
///
/// Returns [`NumericError::Empty`] for fewer than 2 samples.
pub fn rms(w: &Waveform) -> Result<f64, NumericError> {
    if w.len() < 2 {
        return Err(NumericError::Empty);
    }
    let ts = w.times();
    let vs = w.values();
    let mut acc = 0.0;
    for i in 0..ts.len() - 1 {
        let dt = ts[i + 1] - ts[i];
        acc += 0.5 * (vs[i] * vs[i] + vs[i + 1] * vs[i + 1]) * dt;
    }
    let span = ts[ts.len() - 1] - ts[0];
    Ok((acc / span).sqrt())
}

fn integrate(w: &Waveform) -> Result<(f64, f64), NumericError> {
    if w.len() < 2 {
        return Err(NumericError::Empty);
    }
    let ts = w.times();
    let vs = w.values();
    let mut acc = 0.0;
    for i in 0..ts.len() - 1 {
        acc += 0.5 * (vs[i] + vs[i + 1]) * (ts[i + 1] - ts[i]);
    }
    Ok((acc, ts[ts.len() - 1] - ts[0]))
}

/// Complex Fourier component of the waveform at `freq`, evaluated from
/// `t_start` to the end over an integer number of periods (as many as fit).
///
/// Returns amplitude and phase of the `freq` component — the primitive
/// behind frequency-response extraction from transient sine runs.
///
/// # Errors
///
/// * [`NumericError::Empty`] for fewer than 2 samples.
/// * [`NumericError::InvalidInput`] if less than one period fits after
///   `t_start`.
pub fn fourier_component(
    w: &Waveform,
    freq: f64,
    t_start: f64,
) -> Result<crate::Complex64, NumericError> {
    if w.len() < 2 {
        return Err(NumericError::Empty);
    }
    let t_end = w.times()[w.times().len() - 1];
    let period = 1.0 / freq;
    let n_periods = ((t_end - t_start) / period).floor();
    if n_periods < 1.0 {
        return Err(NumericError::InvalidInput(format!(
            "need at least one period of {freq} Hz after t = {t_start}"
        )));
    }
    let t0 = t_end - n_periods * period;
    // Correlate on a fine uniform grid (trapezoid), robust to the solver's
    // non-uniform time steps.
    let steps = 64 * n_periods as usize;
    let dt = (t_end - t0) / steps as f64;
    let mut re = 0.0;
    let mut im = 0.0;
    let omega = 2.0 * std::f64::consts::PI * freq;
    for k in 0..=steps {
        let t = t0 + k as f64 * dt;
        let v = crate::interp::linear(w.times(), w.values(), t)?;
        let weight = if k == 0 || k == steps { 0.5 } else { 1.0 };
        re += weight * v * (omega * t).cos();
        im -= weight * v * (omega * t).sin();
    }
    let scale = 2.0 * dt / (t_end - t0);
    Ok(crate::Complex64::new(re * scale, im * scale))
}

/// Propagation delay between `a` crossing `thresh_a` and the next time `b`
/// crosses `thresh_b` (both with the given edges).
///
/// Returns `None` when either crossing is absent.
///
/// # Errors
///
/// Propagates [`crossings`] errors.
pub fn propagation_delay(
    a: &Waveform,
    thresh_a: f64,
    edge_a: Edge,
    b: &Waveform,
    thresh_b: f64,
    edge_b: Edge,
) -> Result<Option<f64>, NumericError> {
    let ta = crossings(a, thresh_a, edge_a)?;
    let Some(&t0) = ta.first() else {
        return Ok(None);
    };
    Ok(first_crossing_after(b, thresh_b, edge_b, t0)?.map(|t1| t1 - t0))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp() -> Waveform {
        // 0→1 V linear ramp over 1 s.
        Waveform::from_fn(0.0, 1.0, 101, |t| t)
    }

    #[test]
    fn crossing_detection() {
        let w = ramp();
        let c = crossings(&w, 0.5, Edge::Rising).unwrap();
        assert_eq!(c.len(), 1);
        assert!((c[0] - 0.5).abs() < 1e-12);
        assert!(crossings(&w, 0.5, Edge::Falling).unwrap().is_empty());
    }

    #[test]
    fn crossing_both_edges() {
        let w = Waveform::from_fn(0.0, 1.0, 1001, |t| (2.0 * std::f64::consts::PI * t).sin());
        let any = crossings(&w, 0.0, Edge::Any).unwrap();
        // sin crosses zero at 0.5 (falling); the endpoints start/end at 0.
        assert!(!any.is_empty());
        let f = crossings(&w, 0.0, Edge::Falling).unwrap();
        assert!((f[0] - 0.5).abs() < 1e-3);
    }

    #[test]
    fn crossing_needs_samples() {
        let w = Waveform::new();
        assert!(matches!(
            crossings(&w, 0.0, Edge::Any),
            Err(NumericError::Empty)
        ));
    }

    #[test]
    fn rise_time_of_ramp() {
        // 10%..90% of a unit ramp over 1 s = 0.8 s.
        let rt = rise_time(&ramp()).unwrap();
        assert!((rt - 0.8).abs() < 1e-6, "rt = {rt}");
    }

    #[test]
    fn fall_time_of_inverse_ramp() {
        let w = Waveform::from_fn(0.0, 1.0, 101, |t| 1.0 - t);
        let ft = fall_time(&w).unwrap();
        assert!((ft - 0.8).abs() < 1e-6, "ft = {ft}");
    }

    #[test]
    fn rise_time_needs_transition() {
        let flat = Waveform::from_fn(0.0, 1.0, 10, |_| 1.0);
        assert!(rise_time(&flat).is_err());
    }

    #[test]
    fn slew_rates() {
        // Asymmetric triangle: up at 2 V/s for 0.25 s, down at -2/3 V/s.
        let w = Waveform::from_fn(0.0, 1.0, 401, |t| {
            if t < 0.25 {
                2.0 * t
            } else {
                0.5 - (t - 0.25) * 2.0 / 3.0
            }
        });
        assert!((max_rise_rate(&w).unwrap() - 2.0).abs() < 1e-6);
        assert!((max_fall_rate(&w).unwrap() - 2.0 / 3.0).abs() < 1e-6);
        assert!((max_slew_rate(&w).unwrap() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn overshoot_measure() {
        // Damped response peaking at 1.2 for a 0→1 step: 20 % overshoot.
        let w = Waveform::from_fn(0.0, 10.0, 1000, |t| {
            1.0 - (-t).exp() * (1.3 * (2.0 * t).cos() - 1.0).max(-1.0)
        });
        let os = overshoot(&w, 0.0, 1.0).unwrap();
        assert!(os > 0.0);
        assert!(overshoot(&w, 1.0, 1.0).is_err());
        let mono = ramp();
        assert_eq!(overshoot(&mono, 0.0, 1.0).unwrap(), 0.0);
    }

    #[test]
    fn settling() {
        let w = Waveform::from_fn(0.0, 10.0, 2000, |t| 1.0 - (-t).exp());
        let ts = settling_time(&w, 1.0, 0.01).unwrap().unwrap();
        // exp(-t) < 0.01 at t ≈ 4.6.
        assert!((ts - 4.6).abs() < 0.1, "settling at {ts}");
        // Never settles in a tight band that the tail still violates.
        let w2 = Waveform::from_fn(0.0, 1.0, 100, |t| t);
        assert_eq!(settling_time(&w2, 0.0, 0.01).unwrap(), None);
    }

    #[test]
    fn average_and_rms() {
        let dc = Waveform::from_fn(0.0, 1.0, 100, |_| 2.0);
        assert!((average(&dc).unwrap() - 2.0).abs() < 1e-12);
        assert!((rms(&dc).unwrap() - 2.0).abs() < 1e-12);
        let sine = Waveform::from_fn(0.0, 1.0, 10_001, |t| (2.0 * std::f64::consts::PI * t).sin());
        assert!(average(&sine).unwrap().abs() < 1e-4);
        assert!((rms(&sine).unwrap() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-4);
    }

    #[test]
    fn fourier_component_of_sine() {
        let f = 1.0e3;
        let w = Waveform::from_fn(0.0, 5.0e-3, 5000, |t| {
            0.7 * (2.0 * std::f64::consts::PI * f * t + 0.5).sin()
        });
        let c = fourier_component(&w, f, 1.0e-3).unwrap();
        assert!((c.abs() - 0.7).abs() < 5e-3, "amplitude {}", c.abs());
        // Phase of sin(ωt + φ) in the cos/−sin correlation convention:
        // v = A·sin(ωt+φ) = A·cos(ωt + φ − π/2) ⇒ arg = φ − π/2.
        let expect = 0.5 - std::f64::consts::FRAC_PI_2;
        let mut diff = c.arg() - expect;
        while diff > std::f64::consts::PI {
            diff -= 2.0 * std::f64::consts::PI;
        }
        while diff < -std::f64::consts::PI {
            diff += 2.0 * std::f64::consts::PI;
        }
        assert!(diff.abs() < 0.02, "phase diff {diff}");
    }

    #[test]
    fn fourier_rejects_short_windows() {
        let w = Waveform::from_fn(0.0, 1.0e-3, 100, |_| 1.0);
        assert!(fourier_component(&w, 100.0, 0.0).is_err());
        assert!(fourier_component(&Waveform::new(), 1.0, 0.0).is_err());
    }

    #[test]
    fn fourier_ignores_dc_and_harmonics() {
        let f = 1.0e3;
        let w = Waveform::from_fn(0.0, 4.0e-3, 4000, |t| {
            2.0 + (2.0 * std::f64::consts::PI * f * t).sin()
                + 0.5 * (2.0 * std::f64::consts::PI * 3.0 * f * t).sin()
        });
        let c = fourier_component(&w, f, 0.0).unwrap();
        assert!((c.abs() - 1.0).abs() < 0.01, "amplitude {}", c.abs());
    }

    #[test]
    fn delay_between_waveforms() {
        let a = Waveform::from_fn(0.0, 1.0, 101, |t| if t > 0.2 { 1.0 } else { 0.0 });
        let b = Waveform::from_fn(0.0, 1.0, 101, |t| if t > 0.5 { 1.0 } else { 0.0 });
        let d = propagation_delay(&a, 0.5, Edge::Rising, &b, 0.5, Edge::Rising)
            .unwrap()
            .unwrap();
        assert!((d - 0.3).abs() < 0.02, "delay {d}");
        // Missing output edge → None.
        let flat = Waveform::from_fn(0.0, 1.0, 10, |_| 0.0);
        assert_eq!(
            propagation_delay(&a, 0.5, Edge::Rising, &flat, 0.5, Edge::Rising).unwrap(),
            None
        );
    }
}
