//! Dense LU factorization with partial pivoting, generic over [`Scalar`].
//!
//! One factorization serves both the real Newton solves of DC/transient
//! analysis (`T = f64`) and the complex solves of AC analysis
//! (`T = `[`Complex64`](crate::Complex64)).

use crate::dense::DenseMatrix;
use crate::{NumericError, Scalar};

/// An LU factorization `P·A = L·U` of a square matrix.
///
/// # Example
///
/// ```
/// use gabm_numeric::{DenseMatrix, LuFactor};
///
/// # fn main() -> Result<(), gabm_numeric::NumericError> {
/// let a = DenseMatrix::from_rows(&[&[2.0, 1.0][..], &[1.0, 3.0][..]])?;
/// let lu = LuFactor::new(&a)?;
/// let x = lu.solve(&[3.0, 5.0])?;
/// assert!((x[0] - 0.8).abs() < 1e-12);
/// assert!((x[1] - 1.4).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LuFactor<T = f64> {
    /// Combined L (strict lower, unit diagonal implied) and U (upper) factors.
    lu: DenseMatrix<T>,
    /// Row permutation: `perm[i]` is the original row now in position `i`.
    perm: Vec<usize>,
    /// Sign of the permutation, for determinant computation.
    perm_sign: f64,
}

/// Pivots smaller than this (relative to the largest magnitude seen in the
/// column) are treated as zero. MNA matrices from well-posed circuits keep
/// pivots far above this threshold; hitting it indicates a floating node or
/// a short-circuited voltage-source loop.
const PIVOT_EPS: f64 = 1e-13;

impl<T: Scalar> LuFactor<T> {
    /// Factorizes `a` with partial (row) pivoting.
    ///
    /// # Errors
    ///
    /// * [`NumericError::DimensionMismatch`] if `a` is not square.
    /// * [`NumericError::Singular`] if a pivot column is numerically zero.
    pub fn new(a: &DenseMatrix<T>) -> Result<Self, NumericError> {
        if !a.is_square() {
            return Err(NumericError::DimensionMismatch {
                expected: a.rows(),
                found: a.cols(),
            });
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut perm_sign = 1.0;
        // Scale factors for scaled partial pivoting: guards against badly
        // scaled MNA rows (conductances span ~1e-12 .. 1e3).
        let mut scale = vec![0.0f64; n];
        for i in 0..n {
            let mut s = 0.0f64;
            for j in 0..n {
                s = s.max(lu[(i, j)].magnitude());
            }
            scale[i] = if s == 0.0 { 1.0 } else { s };
        }
        for k in 0..n {
            // Select pivot row by scaled magnitude.
            let mut pivot_row = k;
            let mut pivot_mag = lu[(k, k)].magnitude() / scale[k];
            for i in (k + 1)..n {
                let mag = lu[(i, k)].magnitude() / scale[i];
                if mag > pivot_mag {
                    pivot_mag = mag;
                    pivot_row = i;
                }
            }
            if pivot_mag < PIVOT_EPS {
                return Err(NumericError::Singular { pivot: k });
            }
            if pivot_row != k {
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(pivot_row, j)];
                    lu[(pivot_row, j)] = tmp;
                }
                perm.swap(k, pivot_row);
                scale.swap(k, pivot_row);
                perm_sign = -perm_sign;
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let factor = lu[(i, k)] / pivot;
                lu[(i, k)] = factor;
                if factor == T::zero() {
                    continue;
                }
                for j in (k + 1)..n {
                    let upd = lu[(i, j)] - factor * lu[(k, j)];
                    lu[(i, j)] = upd;
                }
            }
        }
        Ok(LuFactor {
            lu,
            perm,
            perm_sign,
        })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A·x = b`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::DimensionMismatch`] if `b.len() != dim()`.
    pub fn solve(&self, b: &[T]) -> Result<Vec<T>, NumericError> {
        let n = self.dim();
        if b.len() != n {
            return Err(NumericError::DimensionMismatch {
                expected: n,
                found: b.len(),
            });
        }
        // Apply permutation: y = P·b.
        let mut x: Vec<T> = (0..n).map(|i| b[self.perm[i]]).collect();
        // Forward substitution with unit lower factor.
        for i in 1..n {
            let mut acc = x[i];
            #[allow(clippy::needless_range_loop)]
            for j in 0..i {
                acc = acc - self.lu[(i, j)] * x[j];
            }
            x[i] = acc;
        }
        // Backward substitution with upper factor.
        for i in (0..n).rev() {
            let mut acc = x[i];
            #[allow(clippy::needless_range_loop)]
            for j in (i + 1)..n {
                acc = acc - self.lu[(i, j)] * x[j];
            }
            x[i] = acc / self.lu[(i, i)];
        }
        Ok(x)
    }

    /// Solves in place, reusing the caller's buffer (hot path of the Newton
    /// loop).
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::DimensionMismatch`] if `b.len() != dim()`.
    pub fn solve_in_place(&self, b: &mut [T]) -> Result<(), NumericError> {
        let x = self.solve(b)?;
        b.copy_from_slice(&x);
        Ok(())
    }

    /// Determinant of the original matrix.
    pub fn det(&self) -> T {
        let mut d = T::from_f64(self.perm_sign);
        for i in 0..self.dim() {
            d = d * self.lu[(i, i)];
        }
        d
    }

    /// Crude reciprocal condition estimate from the diagonal pivot spread.
    ///
    /// A value near zero signals an ill-conditioned MNA system (the simulator
    /// uses this to diagnose convergence trouble, mirroring the paper's §4
    /// note on discontinuities causing simulator problems).
    pub fn rcond_estimate(&self) -> f64 {
        let mut min = f64::INFINITY;
        let mut max = 0.0f64;
        for i in 0..self.dim() {
            let m = self.lu[(i, i)].magnitude();
            min = min.min(m);
            max = max.max(m);
        }
        if max == 0.0 {
            0.0
        } else {
            min / max
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Complex64;

    #[test]
    fn solve_2x2() {
        let a = DenseMatrix::from_rows(&[&[4.0, 1.0][..], &[1.0, 3.0][..]]).unwrap();
        let lu = LuFactor::new(&a).unwrap();
        let x = lu.solve(&[1.0, 2.0]).unwrap();
        let r = a.mul_vec(&x).unwrap();
        assert!((r[0] - 1.0).abs() < 1e-14);
        assert!((r[1] - 2.0).abs() < 1e-14);
    }

    #[test]
    fn requires_pivoting() {
        // Zero on the diagonal forces a row swap.
        let a = DenseMatrix::from_rows(&[&[0.0, 1.0][..], &[1.0, 0.0][..]]).unwrap();
        let lu = LuFactor::new(&a).unwrap();
        let x = lu.solve(&[5.0, 7.0]).unwrap();
        assert_eq!(x, vec![7.0, 5.0]);
    }

    #[test]
    fn detects_singular() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0][..], &[2.0, 4.0][..]]).unwrap();
        assert!(matches!(
            LuFactor::new(&a),
            Err(NumericError::Singular { .. })
        ));
    }

    #[test]
    fn rejects_non_square() {
        let a: DenseMatrix<f64> = DenseMatrix::zeros(2, 3);
        assert!(matches!(
            LuFactor::new(&a),
            Err(NumericError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn determinant() {
        let a = DenseMatrix::from_rows(&[&[2.0, 0.0][..], &[0.0, 3.0][..]]).unwrap();
        assert!((LuFactor::new(&a).unwrap().det() - 6.0).abs() < 1e-14);
        // Permutation flips the sign.
        let b = DenseMatrix::from_rows(&[&[0.0, 1.0][..], &[1.0, 0.0][..]]).unwrap();
        assert!((LuFactor::new(&b).unwrap().det() + 1.0).abs() < 1e-14);
    }

    #[test]
    fn badly_scaled_rows() {
        // Scaled pivoting must handle rows whose magnitudes differ by 1e12.
        let a = DenseMatrix::from_rows(&[&[1e-12, 1.0][..], &[1.0, 1.0][..]]).unwrap();
        let lu = LuFactor::new(&a).unwrap();
        let x = lu.solve(&[1.0, 2.0]).unwrap();
        let r = a.mul_vec(&x).unwrap();
        assert!((r[0] - 1.0).abs() < 1e-9);
        assert!((r[1] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn solve_in_place_matches_solve() {
        let a = DenseMatrix::from_rows(&[&[3.0, 1.0][..], &[1.0, 2.0][..]]).unwrap();
        let lu = LuFactor::new(&a).unwrap();
        let mut b = [1.0, 1.0];
        lu.solve_in_place(&mut b).unwrap();
        let x = lu.solve(&[1.0, 1.0]).unwrap();
        assert_eq!(b.to_vec(), x);
    }

    #[test]
    fn complex_solve() {
        let j = Complex64::J;
        // (1+j)x = 2 → x = 1-j.
        let a = DenseMatrix::from_rows(&[&[Complex64::ONE + j][..]]).unwrap();
        let lu = LuFactor::new(&a).unwrap();
        let x = lu.solve(&[Complex64::from_real(2.0)]).unwrap();
        assert!((x[0] - Complex64::new(1.0, -1.0)).abs() < 1e-14);
    }

    #[test]
    fn rcond_sane() {
        let a: DenseMatrix<f64> = DenseMatrix::identity(4);
        let lu = LuFactor::new(&a).unwrap();
        assert!((lu.rcond_estimate() - 1.0).abs() < 1e-14);
    }

    #[test]
    fn random_residuals_small() {
        // Deterministic pseudo-random matrix: xorshift to avoid rand dep here.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        for n in [1usize, 2, 5, 10, 20] {
            let mut a = DenseMatrix::zeros(n, n);
            for i in 0..n {
                for jj in 0..n {
                    a[(i, jj)] = next();
                }
                // Diagonal dominance keeps it well conditioned.
                a[(i, i)] += 2.0;
            }
            let b: Vec<f64> = (0..n).map(|_| next()).collect();
            let lu = LuFactor::new(&a).unwrap();
            let x = lu.solve(&b).unwrap();
            let r = a.mul_vec(&x).unwrap();
            for (ri, bi) in r.iter().zip(&b) {
                assert!((ri - bi).abs() < 1e-10, "n={n}");
            }
        }
    }
}
