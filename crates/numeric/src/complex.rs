//! A self-contained double-precision complex number.
//!
//! Used by the AC small-signal analysis in `gabm-sim` and by the impedance
//! extraction rigs in `gabm-charac`. Only the operations the workspace needs
//! are provided; this is deliberately not a general-purpose complex library.

use crate::Scalar;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` real and imaginary parts.
///
/// # Example
///
/// ```
/// use gabm_numeric::Complex64;
///
/// let z = Complex64::new(3.0, 4.0);
/// assert_eq!(z.abs(), 5.0);
/// assert_eq!((z * z.conj()).re, 25.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// The complex zero.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// The complex one.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
    /// The imaginary unit `j` (electrical-engineering notation).
    pub const J: Complex64 = Complex64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    pub const fn new(re: f64, im: f64) -> Self {
        Complex64 { re, im }
    }

    /// Creates a purely real complex number.
    pub const fn from_real(re: f64) -> Self {
        Complex64 { re, im: 0.0 }
    }

    /// Creates a complex number from polar form (modulus, argument in
    /// radians).
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex64::new(r * theta.cos(), r * theta.sin())
    }

    /// Modulus `|z|`.
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared modulus `|z|²`, cheaper than [`Complex64::abs`].
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Argument (phase) in radians, in `(-π, π]`.
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Argument (phase) in degrees.
    pub fn arg_deg(self) -> f64 {
        self.arg().to_degrees()
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Complex64::new(self.re, -self.im)
    }

    /// Multiplicative inverse `1/z`.
    ///
    /// Returns an infinite value if `z == 0`, mirroring `f64` division
    /// semantics.
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        Complex64::new(self.re / d, -self.im / d)
    }

    /// Modulus expressed in decibels, `20·log10 |z|`.
    pub fn abs_db(self) -> f64 {
        20.0 * self.abs().log10()
    }

    /// Returns `true` if either component is NaN.
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }

    /// Complex exponential `e^z`.
    pub fn exp(self) -> Self {
        Complex64::from_polar(self.re.exp(), self.im)
    }

    /// Principal square root.
    pub fn sqrt(self) -> Self {
        Complex64::from_polar(self.abs().sqrt(), self.arg() / 2.0)
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}j", self.re, self.im)
        } else {
            write!(f, "{}{}j", self.re, self.im)
        }
    }
}

impl From<f64> for Complex64 {
    fn from(re: f64) -> Self {
        Complex64::from_real(re)
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    fn add(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex64 {
    fn add_assign(&mut self, rhs: Complex64) {
        *self = *self + rhs;
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    fn sub(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex64 {
    fn sub_assign(&mut self, rhs: Complex64) {
        *self = *self - rhs;
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    fn mul(self, rhs: Complex64) -> Complex64 {
        Complex64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex64 {
    fn mul_assign(&mut self, rhs: Complex64) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex64 {
    type Output = Complex64;
    fn mul(self, rhs: f64) -> Complex64 {
        Complex64::new(self.re * rhs, self.im * rhs)
    }
}

impl Div for Complex64 {
    type Output = Complex64;
    fn div(self, rhs: Complex64) -> Complex64 {
        // Smith's algorithm avoids overflow for very large/small components,
        // which impedance sweeps spanning many decades do produce.
        if rhs.re.abs() >= rhs.im.abs() {
            let r = rhs.im / rhs.re;
            let d = rhs.re + rhs.im * r;
            Complex64::new((self.re + self.im * r) / d, (self.im - self.re * r) / d)
        } else {
            let r = rhs.re / rhs.im;
            let d = rhs.re * r + rhs.im;
            Complex64::new((self.re * r + self.im) / d, (self.im * r - self.re) / d)
        }
    }
}

impl Div<f64> for Complex64 {
    type Output = Complex64;
    fn div(self, rhs: f64) -> Complex64 {
        Complex64::new(self.re / rhs, self.im / rhs)
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    fn neg(self) -> Complex64 {
        Complex64::new(-self.re, -self.im)
    }
}

impl Scalar for Complex64 {
    fn zero() -> Self {
        Complex64::ZERO
    }
    fn one() -> Self {
        Complex64::ONE
    }
    fn magnitude(&self) -> f64 {
        self.abs()
    }
    fn from_f64(x: f64) -> Self {
        Complex64::from_real(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn construction_and_accessors() {
        let z = Complex64::new(1.0, -2.0);
        assert_eq!(z.re, 1.0);
        assert_eq!(z.im, -2.0);
        assert_eq!(Complex64::from_real(3.0), Complex64::new(3.0, 0.0));
        assert_eq!(Complex64::from(3.0), Complex64::from_real(3.0));
    }

    #[test]
    fn polar_round_trip() {
        let z = Complex64::from_polar(2.0, std::f64::consts::FRAC_PI_3);
        assert!(close(z.abs(), 2.0));
        assert!(close(z.arg(), std::f64::consts::FRAC_PI_3));
    }

    #[test]
    fn arithmetic() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(3.0, -1.0);
        assert_eq!(a + b, Complex64::new(4.0, 1.0));
        assert_eq!(a - b, Complex64::new(-2.0, 3.0));
        assert_eq!(a * b, Complex64::new(5.0, 5.0));
        let q = a / b;
        let back = q * b;
        assert!(close(back.re, a.re) && close(back.im, a.im));
        assert_eq!(-a, Complex64::new(-1.0, -2.0));
    }

    #[test]
    fn division_avoids_overflow() {
        let big = Complex64::new(1e300, 1e300);
        let q = Complex64::ONE / big;
        assert!(!q.is_nan());
        assert!(q.abs() > 0.0);
    }

    #[test]
    fn conj_recip_identities() {
        let z = Complex64::new(0.5, -1.5);
        let p = z * z.recip();
        assert!(close(p.re, 1.0) && close(p.im, 0.0));
        assert_eq!(z.conj().conj(), z);
    }

    #[test]
    fn db_and_phase() {
        let z = Complex64::new(10.0, 0.0);
        assert!(close(z.abs_db(), 20.0));
        assert!(close(Complex64::J.arg_deg(), 90.0));
    }

    #[test]
    fn exp_and_sqrt() {
        // e^{jπ} = -1.
        let z = (Complex64::J * std::f64::consts::PI).exp();
        assert!(close(z.re, -1.0) && z.im.abs() < 1e-12);
        let s = Complex64::new(-4.0, 0.0).sqrt();
        assert!(close(s.im, 2.0) && s.re.abs() < 1e-12);
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex64::new(1.0, 2.0).to_string(), "1+2j");
        assert_eq!(Complex64::new(1.0, -2.0).to_string(), "1-2j");
    }

    #[test]
    fn scalar_impl() {
        assert_eq!(<Complex64 as Scalar>::zero(), Complex64::ZERO);
        assert_eq!(<Complex64 as Scalar>::one(), Complex64::ONE);
        assert!(close(Complex64::new(3.0, 4.0).magnitude(), 5.0));
    }
}
