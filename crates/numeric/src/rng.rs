//! A small deterministic pseudo-random number generator.
//!
//! The workspace must build and test with no network access, so it cannot
//! pull in an external `rand`; Monte-Carlo characterization and the
//! randomized test suites only need a seedable, reproducible, reasonably
//! well-distributed generator. This is `splitmix64` (Steele, Lea &
//! Flood, "Fast splittable pseudorandom number generators", OOPSLA 2014)
//! — 64 bits of state, passes BigCrush when used as a stream, and is the
//! standard seeding primitive of the xoshiro family.

/// Deterministic 64-bit PRNG (splitmix64).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    state: u64,
}

/// The splitmix64 Weyl-sequence increment (golden-ratio constant).
const GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

impl Rng {
    /// Creates a generator from a seed; equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// Derives the `index`-th independent child generator of `seed`.
    ///
    /// This is splitmix64's seed-splitting scheme: the child seed is the
    /// `index`-th *output* of the parent stream `Rng::new(seed)` (the
    /// finalizer decorrelates neighbouring indices), so distinct indices
    /// give statistically independent streams. Parallel Monte-Carlo
    /// assigns one child per sample, which makes the draw for sample `k`
    /// a pure function of `(seed, k)` — bitwise identical no matter how
    /// samples are distributed over threads.
    pub fn split(seed: u64, index: u64) -> Self {
        let mut parent = Rng::new(seed.wrapping_add(index.wrapping_mul(GAMMA)));
        Rng::new(parent.next_u64())
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GAMMA);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform sample in `[0, 1)` with 53 bits of precision.
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform sample in `[lo, hi)` (degenerate ranges return `lo`).
    pub fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0, "Rng::below needs a non-empty range");
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform sample in `[-1, 1]`.
    pub fn symmetric(&mut self) -> f64 {
        self.range(-1.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        let mut c = Rng::new(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn uniform_in_unit_interval_with_flat_mean() {
        let mut rng = Rng::new(7);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u = rng.uniform();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn split_streams_are_deterministic_and_distinct() {
        let a0: Vec<u64> = {
            let mut r = Rng::split(9, 0);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let a0_again: Vec<u64> = {
            let mut r = Rng::split(9, 0);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let a1: Vec<u64> = {
            let mut r = Rng::split(9, 1);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b0: Vec<u64> = {
            let mut r = Rng::split(10, 0);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a0, a0_again);
        assert_ne!(a0, a1);
        assert_ne!(a0, b0);
        // The child seed is the index-th output of the parent stream.
        let mut parent = Rng::new(9);
        let _skip = parent.next_u64();
        assert_eq!(Rng::split(9, 1), Rng::new(parent.next_u64()));
    }

    #[test]
    fn range_and_below_respect_bounds() {
        let mut rng = Rng::new(1);
        for _ in 0..1000 {
            let v = rng.range(-3.0, 5.0);
            assert!((-3.0..5.0).contains(&v));
            assert!(rng.below(7) < 7);
        }
        assert_eq!(rng.range(2.0, 2.0), 2.0);
    }
}
