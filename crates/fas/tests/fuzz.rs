//! Robustness: the FAS front end must never panic — any input produces
//! either a model or a diagnostic. Randomized but fully deterministic
//! (seeded local PRNG; no external fuzzing dependency).

use gabm_fas::{compile, parse, print_model};
use gabm_numeric::rng::Rng;

/// Arbitrary text never panics the lexer/parser.
#[test]
fn parser_total_on_arbitrary_text() {
    // A char pool mixing FAS punctuation, controls and non-ASCII.
    let pool: Vec<char> = "abcXYZ019 .,()=+-*/<>#\t\n\"'\\{}[]~@éπ✓\u{0}\u{7f}"
        .chars()
        .collect();
    let mut rng = Rng::new(0xF45_0001);
    for _ in 0..256 {
        let len = rng.below(201);
        let src: String = (0..len).map(|_| pool[rng.below(pool.len())]).collect();
        let _ = parse(&src);
    }
}

/// Arbitrary ASCII with FAS-flavoured vocabulary never panics anywhere in
/// the pipeline.
#[test]
fn pipeline_total_on_fas_flavoured_text() {
    let vocab = [
        "model",
        "pin",
        "param",
        "analog",
        "endanalog",
        "endmodel",
        "make",
        "if",
        "then",
        "else",
        "endif",
        "state",
        "volt",
        "curr",
        "mode",
        "dc",
        "=",
        "(",
        ")",
        ".",
        "+",
        "x",
        "1.5",
        "\n",
    ];
    let mut rng = Rng::new(0xF45_0002);
    for _ in 0..256 {
        let n = rng.below(60);
        let words: Vec<&str> = (0..n).map(|_| vocab[rng.below(vocab.len())]).collect();
        let src = words.join(" ");
        let _ = compile(&src);
    }
}

/// Well-formed random straight-line models: parse → print → parse is an
/// identity, and compile is total.
#[test]
fn roundtrip_generated_straight_line_models() {
    let exprs = [
        "volt.value(a)",
        "g * v0",
        "v0 + 1.0",
        "limit(v0, -1.0, 1.0)",
        "sin(time)",
        "state.dt(v0)",
        "state.delay(v0)",
        "max(v0, 0.0)",
        "-v0 / 2.0",
    ];
    let mut rng = Rng::new(0xF45_0003);
    for _ in 0..128 {
        let n = 1 + rng.below(7);
        let mut body = String::from("make v0 = volt.value(a)\n");
        for k in 0..n {
            body.push_str(&format!(
                "make v{} = {}\n",
                k + 1,
                exprs[rng.below(exprs.len())]
            ));
        }
        body.push_str("make curr.on(a) = v0\n");
        let src = format!("model fuzz pin (a) param (g=1e-3)\nanalog\n{body}endanalog\nendmodel\n");
        let m1 = parse(&src).expect("generated model parses");
        let printed = print_model(&m1);
        let m2 = parse(&printed).expect("printed model parses");
        assert_eq!(
            m1, m2,
            "print/parse roundtrip changed the model:\n{printed}"
        );
        assert!(compile(&src).is_ok(), "{src}");
    }
}
