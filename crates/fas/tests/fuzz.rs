//! Robustness: the FAS front end must never panic — any input produces
//! either a model or a diagnostic. Randomized but fully deterministic
//! (seeded local PRNG; no external fuzzing dependency).

use gabm_fas::{compile, parse, print_model, testgen};
use gabm_numeric::rng::Rng;

/// Arbitrary text never panics the lexer/parser.
#[test]
fn parser_total_on_arbitrary_text() {
    // A char pool mixing FAS punctuation, controls and non-ASCII.
    let pool: Vec<char> = "abcXYZ019 .,()=+-*/<>#\t\n\"'\\{}[]~@éπ✓\u{0}\u{7f}"
        .chars()
        .collect();
    let mut rng = Rng::new(0xF45_0001);
    for _ in 0..256 {
        let len = rng.below(201);
        let src: String = (0..len).map(|_| pool[rng.below(pool.len())]).collect();
        let _ = parse(&src);
    }
}

/// Arbitrary ASCII with FAS-flavoured vocabulary never panics anywhere in
/// the pipeline.
#[test]
fn pipeline_total_on_fas_flavoured_text() {
    let vocab = [
        "model",
        "pin",
        "param",
        "analog",
        "endanalog",
        "endmodel",
        "make",
        "if",
        "then",
        "else",
        "endif",
        "state",
        "volt",
        "curr",
        "mode",
        "dc",
        "=",
        "(",
        ")",
        ".",
        "+",
        "x",
        "1.5",
        "\n",
    ];
    let mut rng = Rng::new(0xF45_0002);
    for _ in 0..256 {
        let n = rng.below(60);
        let words: Vec<&str> = (0..n).map(|_| vocab[rng.below(vocab.len())]).collect();
        let src = words.join(" ");
        let _ = compile(&src);
    }
}

/// Well-formed random straight-line models: parse → print → parse is an
/// identity, and compile is total. The generator lives in
/// `gabm_fas::testgen` so the interpreter-vs-VM differential suite can
/// reuse it.
#[test]
fn roundtrip_generated_straight_line_models() {
    let mut rng = Rng::new(0xF45_0003);
    for _ in 0..128 {
        let src = testgen::straight_line_source(&mut rng);
        let m1 = parse(&src).expect("generated model parses");
        let printed = print_model(&m1);
        let m2 = parse(&printed).expect("printed model parses");
        assert_eq!(
            m1, m2,
            "print/parse roundtrip changed the model:\n{printed}"
        );
        assert!(compile(&src).is_ok(), "{src}");
    }
}

/// The rich generator (full state/branch vocabulary) also roundtrips
/// through the printer and always compiles.
#[test]
fn roundtrip_generated_rich_models() {
    let mut rng = Rng::new(0xF45_0005);
    for _ in 0..128 {
        let src = testgen::rich_model_source(&mut rng);
        let m1 = parse(&src).expect("generated model parses");
        let printed = print_model(&m1);
        let m2 = parse(&printed).expect("printed model parses");
        assert_eq!(
            m1, m2,
            "print/parse roundtrip changed the model:\n{printed}"
        );
        assert!(compile(&src).is_ok(), "{src}");
    }
}
