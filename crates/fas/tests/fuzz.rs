//! Robustness: the FAS front end must never panic — any input produces
//! either a model or a diagnostic.

use gabm_fas::{compile, parse, print_model};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary text never panics the lexer/parser.
    #[test]
    fn parser_total_on_arbitrary_text(src in ".{0,200}") {
        let _ = parse(&src);
    }

    /// Arbitrary ASCII with FAS-flavoured vocabulary never panics anywhere
    /// in the pipeline.
    #[test]
    fn pipeline_total_on_fas_flavoured_text(
        words in proptest::collection::vec(
            prop_oneof![
                Just("model".to_string()),
                Just("pin".to_string()),
                Just("param".to_string()),
                Just("analog".to_string()),
                Just("endanalog".to_string()),
                Just("endmodel".to_string()),
                Just("make".to_string()),
                Just("if".to_string()),
                Just("then".to_string()),
                Just("else".to_string()),
                Just("endif".to_string()),
                Just("state".to_string()),
                Just("volt".to_string()),
                Just("curr".to_string()),
                Just("mode".to_string()),
                Just("dc".to_string()),
                Just("=".to_string()),
                Just("(".to_string()),
                Just(")".to_string()),
                Just(".".to_string()),
                Just("+".to_string()),
                Just("x".to_string()),
                Just("1.5".to_string()),
                Just("\n".to_string()),
            ],
            0..60,
        )
    ) {
        let src = words.join(" ");
        let _ = compile(&src);
    }

    /// Well-formed random straight-line models: parse → print → parse is an
    /// identity, and compile is total.
    #[test]
    fn roundtrip_generated_straight_line_models(
        exprs in proptest::collection::vec(
            prop_oneof![
                Just("volt.value(a)".to_string()),
                Just("g * v0".to_string()),
                Just("v0 + 1.0".to_string()),
                Just("limit(v0, -1.0, 1.0)".to_string()),
                Just("sin(time)".to_string()),
                Just("state.dt(v0)".to_string()),
                Just("state.delay(v0)".to_string()),
                Just("max(v0, 0.0)".to_string()),
                Just("-v0 / 2.0".to_string()),
            ],
            1..8,
        )
    ) {
        let mut body = String::from("make v0 = volt.value(a)\n");
        for (k, e) in exprs.iter().enumerate() {
            body.push_str(&format!("make v{} = {e}\n", k + 1));
        }
        body.push_str("make curr.on(a) = v0\n");
        let src = format!(
            "model fuzz pin (a) param (g=1e-3)\nanalog\n{body}endanalog\nendmodel\n"
        );
        let m1 = parse(&src).expect("generated model parses");
        let printed = print_model(&m1);
        let m2 = parse(&printed).expect("printed model parses");
        prop_assert_eq!(&m1, &m2);
        prop_assert!(compile(&src).is_ok(), "{}", src);
    }
}
