//! Tokenizer for FAS source text.

use crate::{FasError, Pos};

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword.
    Ident(String),
    /// Numeric literal.
    Number(f64),
    /// `(`.
    LParen,
    /// `)`.
    RParen,
    /// `,`.
    Comma,
    /// `=`.
    Eq,
    /// `!=`.
    Ne,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
    /// `+`.
    Plus,
    /// `-`.
    Minus,
    /// `*`.
    Star,
    /// `/`.
    Slash,
    /// `.`.
    Dot,
    /// End of input.
    Eof,
}

impl Token {
    /// `true` if the token is the given keyword/identifier.
    pub fn is_ident(&self, s: &str) -> bool {
        matches!(self, Token::Ident(i) if i == s)
    }
}

/// A token with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// Where it starts.
    pub pos: Pos,
}

/// Tokenizes the whole input.
///
/// Comment syntax: a line whose first non-blank character is `*` or `#` is
/// skipped (SPICE-style title/comment lines), as is everything after `//`.
///
/// # Errors
///
/// [`FasError::Lex`] on malformed numbers or unexpected characters.
pub fn tokenize(src: &str) -> Result<Vec<Spanned>, FasError> {
    let mut out = Vec::new();
    for (line_idx, raw_line) in src.lines().enumerate() {
        let line_no = line_idx + 1;
        let trimmed = raw_line.trim_start();
        if trimmed.starts_with('*') || trimmed.starts_with('#') {
            continue;
        }
        // `//` trailing comments are handled in the `'/'` arm below, on
        // the untruncated line, so every column is a byte offset into
        // `raw_line` — positions cannot drift for tokens adjacent to a
        // comment.
        let line = raw_line;
        let bytes = line.as_bytes();
        let mut i = 0usize;
        while i < bytes.len() {
            let c = bytes[i] as char;
            let pos = Pos {
                line: line_no,
                col: i + 1,
            };
            match c {
                ' ' | '\t' | '\r' => {
                    i += 1;
                }
                '(' => {
                    out.push(Spanned {
                        token: Token::LParen,
                        pos,
                    });
                    i += 1;
                }
                ')' => {
                    out.push(Spanned {
                        token: Token::RParen,
                        pos,
                    });
                    i += 1;
                }
                ',' => {
                    out.push(Spanned {
                        token: Token::Comma,
                        pos,
                    });
                    i += 1;
                }
                '+' => {
                    out.push(Spanned {
                        token: Token::Plus,
                        pos,
                    });
                    i += 1;
                }
                '-' => {
                    out.push(Spanned {
                        token: Token::Minus,
                        pos,
                    });
                    i += 1;
                }
                '*' => {
                    out.push(Spanned {
                        token: Token::Star,
                        pos,
                    });
                    i += 1;
                }
                '/' => {
                    if bytes.get(i + 1) == Some(&b'/') {
                        // Trailing comment: the rest of the line is ignored.
                        break;
                    }
                    out.push(Spanned {
                        token: Token::Slash,
                        pos,
                    });
                    i += 1;
                }
                '.' => {
                    out.push(Spanned {
                        token: Token::Dot,
                        pos,
                    });
                    i += 1;
                }
                '=' => {
                    out.push(Spanned {
                        token: Token::Eq,
                        pos,
                    });
                    i += 1;
                }
                '!' => {
                    if bytes.get(i + 1) == Some(&b'=') {
                        out.push(Spanned {
                            token: Token::Ne,
                            pos,
                        });
                        i += 2;
                    } else {
                        return Err(FasError::Lex {
                            pos,
                            message: "expected '=' after '!'".into(),
                        });
                    }
                }
                '<' => {
                    if bytes.get(i + 1) == Some(&b'=') {
                        out.push(Spanned {
                            token: Token::Le,
                            pos,
                        });
                        i += 2;
                    } else {
                        out.push(Spanned {
                            token: Token::Lt,
                            pos,
                        });
                        i += 1;
                    }
                }
                '>' => {
                    if bytes.get(i + 1) == Some(&b'=') {
                        out.push(Spanned {
                            token: Token::Ge,
                            pos,
                        });
                        i += 2;
                    } else {
                        out.push(Spanned {
                            token: Token::Gt,
                            pos,
                        });
                        i += 1;
                    }
                }
                _ if c.is_ascii_digit() => {
                    let start = i;
                    while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'.') {
                        i += 1;
                    }
                    // Exponent part.
                    if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                        let mut j = i + 1;
                        if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                            j += 1;
                        }
                        if j < bytes.len() && bytes[j].is_ascii_digit() {
                            i = j;
                            while i < bytes.len() && bytes[i].is_ascii_digit() {
                                i += 1;
                            }
                        }
                    }
                    let text = &line[start..i];
                    let value: f64 = text.parse().map_err(|_| FasError::Lex {
                        pos,
                        message: format!("malformed number '{text}'"),
                    })?;
                    out.push(Spanned {
                        token: Token::Number(value),
                        pos,
                    });
                }
                _ if c.is_ascii_alphabetic() || c == '_' => {
                    let start = i;
                    while i < bytes.len()
                        && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                    {
                        i += 1;
                    }
                    out.push(Spanned {
                        token: Token::Ident(line[start..i].to_string()),
                        pos,
                    });
                }
                other => {
                    return Err(FasError::Lex {
                        pos,
                        message: format!("unexpected character '{other}'"),
                    });
                }
            }
        }
    }
    out.push(Spanned {
        token: Token::Eof,
        pos: Pos {
            line: src.lines().count() + 1,
            col: 1,
        },
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        tokenize(src)
            .unwrap()
            .into_iter()
            .map(|s| s.token)
            .collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            toks("make v2 = volt.value(in)"),
            vec![
                Token::Ident("make".into()),
                Token::Ident("v2".into()),
                Token::Eq,
                Token::Ident("volt".into()),
                Token::Dot,
                Token::Ident("value".into()),
                Token::LParen,
                Token::Ident("in".into()),
                Token::RParen,
                Token::Eof,
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            toks("1 2.5 1e-12 3.0E+2"),
            vec![
                Token::Number(1.0),
                Token::Number(2.5),
                Token::Number(1e-12),
                Token::Number(300.0),
                Token::Eof,
            ]
        );
    }

    #[test]
    fn number_followed_by_ident() {
        // `1e` without digits is the number 1 followed by ident `e`.
        assert_eq!(
            toks("1e"),
            vec![Token::Number(1.0), Token::Ident("e".into()), Token::Eof]
        );
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            toks("a <= b >= c != d < e > f"),
            vec![
                Token::Ident("a".into()),
                Token::Le,
                Token::Ident("b".into()),
                Token::Ge,
                Token::Ident("c".into()),
                Token::Ne,
                Token::Ident("d".into()),
                Token::Lt,
                Token::Ident("e".into()),
                Token::Gt,
                Token::Ident("f".into()),
                Token::Eof,
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            toks("* a title line\nmake x = 1 // trailing\n# hash comment"),
            vec![
                Token::Ident("make".into()),
                Token::Ident("x".into()),
                Token::Eq,
                Token::Number(1.0),
                Token::Eof,
            ]
        );
    }

    #[test]
    fn golden_positions_adjacent_to_trailing_comments() {
        // Columns are 1-based byte offsets into the raw line; a trailing
        // `//` comment must not shift the position of any token before it,
        // with or without separating whitespace.
        let spanned = tokenize("make x = 12// note\nmake y = x / 2 // tail\n").unwrap();
        let positions: Vec<(Token, Pos)> = spanned.into_iter().map(|s| (s.token, s.pos)).collect();
        assert_eq!(
            positions,
            vec![
                (Token::Ident("make".into()), Pos { line: 1, col: 1 }),
                (Token::Ident("x".into()), Pos { line: 1, col: 6 }),
                (Token::Eq, Pos { line: 1, col: 8 }),
                (Token::Number(12.0), Pos { line: 1, col: 10 }),
                (Token::Ident("make".into()), Pos { line: 2, col: 1 }),
                (Token::Ident("y".into()), Pos { line: 2, col: 6 }),
                (Token::Eq, Pos { line: 2, col: 8 }),
                (Token::Ident("x".into()), Pos { line: 2, col: 10 }),
                (Token::Slash, Pos { line: 2, col: 12 }),
                (Token::Number(2.0), Pos { line: 2, col: 14 }),
                (Token::Eof, Pos { line: 3, col: 1 }),
            ]
        );
    }

    #[test]
    fn lone_slash_still_divides() {
        assert_eq!(
            toks("a / b"),
            vec![
                Token::Ident("a".into()),
                Token::Slash,
                Token::Ident("b".into()),
                Token::Eof,
            ]
        );
    }

    #[test]
    fn lex_errors() {
        assert!(tokenize("a ! b").is_err());
        assert!(tokenize("price: $5").is_err());
    }

    #[test]
    fn positions_reported() {
        let spanned = tokenize("a\n  b").unwrap();
        assert_eq!(spanned[0].pos, Pos { line: 1, col: 1 });
        assert_eq!(spanned[1].pos, Pos { line: 2, col: 3 });
    }
}
