//! Pretty-printer: AST → canonical FAS source.
//!
//! `parse(print(m))` reproduces `m` exactly (round-trip property), which
//! makes the printer the canonical formatter for generated and hand-written
//! models alike.

use crate::ast::{BinOp, Cond, Expr, Model, RelOp, Stmt, UnaryOp};
use std::fmt::Write as _;

/// Operator precedence for minimal parenthesisation.
fn precedence(e: &Expr) -> u8 {
    match e {
        Expr::Binary(BinOp::Add | BinOp::Sub, _, _) => 1,
        Expr::Binary(BinOp::Mul | BinOp::Div, _, _) => 2,
        Expr::Unary(_, _) => 3,
        _ => 4,
    }
}

fn fmt_number(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v:e}")
    }
}

fn print_expr(e: &Expr, out: &mut String) {
    match e {
        Expr::Num(v) => out.push_str(&fmt_number(*v)),
        Expr::Var(name) => out.push_str(name),
        Expr::PinValue { quantity, pin } => {
            let _ = write!(out, "{quantity}.value({pin})");
        }
        Expr::Unary(UnaryOp::Neg, inner) => {
            out.push('-');
            let need_parens = precedence(inner) < 3;
            if need_parens {
                out.push('(');
            }
            print_expr(inner, out);
            if need_parens {
                out.push(')');
            }
        }
        Expr::Binary(op, a, b) => {
            let my_prec = precedence(e);
            let op_txt = match op {
                BinOp::Add => " + ",
                BinOp::Sub => " - ",
                BinOp::Mul => " * ",
                BinOp::Div => " / ",
            };
            let left_parens = precedence(a) < my_prec;
            if left_parens {
                out.push('(');
            }
            print_expr(a, out);
            if left_parens {
                out.push(')');
            }
            out.push_str(op_txt);
            // Right side: equal precedence always needs parens — the
            // parser is left-associative, so `a + (b + c)` printed bare
            // would reparse as `(a + b) + c`, a different tree (and a
            // different float result; + and * are not associative in
            // f64).
            let right_parens = precedence(b) <= my_prec;
            if right_parens {
                out.push('(');
            }
            print_expr(b, out);
            if right_parens {
                out.push(')');
            }
        }
        Expr::Call { func, args } => {
            out.push_str(func);
            out.push('(');
            for (k, a) in args.iter().enumerate() {
                if k > 0 {
                    out.push_str(", ");
                }
                print_expr(a, out);
            }
            out.push(')');
        }
        Expr::StateDt { arg, .. } => {
            out.push_str("state.dt(");
            print_expr(arg, out);
            out.push(')');
        }
        Expr::StateDelay { var } => {
            let _ = write!(out, "state.delay({var})");
        }
        Expr::StateDelayT { var, td, .. } => {
            let _ = write!(out, "state.delayt({var}, ");
            print_expr(td, out);
            out.push(')');
        }
        Expr::StateIdt { arg, .. } => {
            out.push_str("state.idt(");
            print_expr(arg, out);
            out.push(')');
        }
    }
}

fn print_cond(c: &Cond, out: &mut String) {
    match c {
        Cond::ModeIs { dc } => {
            out.push_str(if *dc { "mode=dc" } else { "mode=tran" });
        }
        Cond::Cmp(op, a, b) => {
            print_expr(a, out);
            let op_txt = match op {
                RelOp::Eq => " = ",
                RelOp::Ne => " != ",
                RelOp::Lt => " < ",
                RelOp::Le => " <= ",
                RelOp::Gt => " > ",
                RelOp::Ge => " >= ",
            };
            out.push_str(op_txt);
            print_expr(b, out);
        }
    }
}

fn print_stmts(stmts: &[Stmt], out: &mut String) {
    for stmt in stmts {
        match stmt {
            Stmt::Make { var, expr, .. } => {
                let _ = write!(out, "make {var} = ");
                print_expr(expr, out);
                out.push('\n');
            }
            Stmt::Impose {
                quantity,
                pin,
                expr,
                ..
            } => {
                let _ = write!(out, "make {quantity}.on({pin}) = ");
                print_expr(expr, out);
                out.push('\n');
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
                ..
            } => {
                out.push_str("if (");
                print_cond(cond, out);
                out.push_str(") then\n");
                print_stmts(then_branch, out);
                if !else_branch.is_empty() {
                    out.push_str("else\n");
                    print_stmts(else_branch, out);
                }
                out.push_str("endif\n");
            }
        }
    }
}

/// Renders the model as canonical FAS source.
pub fn print_model(m: &Model) -> String {
    let mut out = String::new();
    let _ = write!(out, "model {} pin ({})", m.name, m.pins.join(", "));
    if !m.params.is_empty() {
        let params: Vec<String> = m
            .params
            .iter()
            .map(|(n, v)| format!("{n}={}", fmt_number(*v)))
            .collect();
        let _ = write!(out, " param ({})", params.join(", "));
    }
    out.push('\n');
    out.push_str("analog\n");
    print_stmts(&m.body, &mut out);
    out.push_str("endanalog\n");
    out.push_str("endmodel\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    /// Strips the state-instance counters before comparison: they depend on
    /// parse order, which the round-trip preserves anyway, so a plain
    /// equality on the whole model works.
    fn roundtrip(src: &str) {
        let m1 = parse(src).unwrap_or_else(|e| panic!("original does not parse: {e}\n{src}"));
        let printed = print_model(&m1);
        let m2 = parse(&printed)
            .unwrap_or_else(|e| panic!("printed form does not parse: {e}\n{printed}"));
        assert_eq!(m1, m2, "round-trip changed the AST:\n{printed}");
    }

    #[test]
    fn roundtrip_paper_listing() {
        roundtrip(
            "model input_stage pin (in) param (gin=1e-6, cin=5e-12)\nanalog\nmake v2 = volt.value(in)\nif (mode=dc) then\nmake yd4 = 0\nelse\nmake yd4 = state.dt(v2)\nendif\nmake yout5 = cin * yd4\nmake yout6 = gin * v2\nmake yout7 = yout5 + yout6\nmake curr.on(in) = yout7\nendanalog\nendmodel\n",
        );
    }

    #[test]
    fn roundtrip_precedence_cases() {
        for body in [
            "make x = 1 + 2 * 3",
            "make x = (1 + 2) * 3",
            "make x = 1 - (2 - 3)",
            "make x = 1 / (2 / 3)",
            "make x = -(1 + 2)",
            "make x = - -3",
            "make x = 2 * (3 + 4) / (5 - 6)",
            "make x = limit(max(1, 2), -1, min(3, 4))",
        ] {
            roundtrip(&format!(
                "model m pin (a)\nanalog\n{body}\nendanalog\nendmodel\n"
            ));
        }
    }

    #[test]
    fn roundtrip_state_and_conditions() {
        roundtrip(
            "model m pin (a, b) param (g=0.5)\nanalog\nmake u = volt.value(a)\nmake y = state.delay(z) + state.delayt(z, 1e-6) + state.idt(u)\nif (u > 0.5) then\nmake z = y * g\nelse\nmake z = -y\nendif\nif (mode=tran) then\nmake w = state.dt(u)\nelse\nmake w = 0\nendif\nmake curr.on(b) = w + z\nendanalog\nendmodel\n",
        );
    }

    #[test]
    fn roundtrip_generated_models() {
        // The printer must be total over everything the code generator can
        // emit: run it over the big comparator model.
        use gabm_codegen::{generate, Backend};
        let diagram = {
            // Re-build the input-stage diagram here to avoid a circular
            // dev-dependency on gabm-models: the constructs cover all
            // statement kinds except FirstOrderLag.
            gabm_core::constructs::InputStageSpec::new("in", 1e-6, 5e-12)
                .diagram()
                .unwrap()
        };
        let code = generate(&diagram, Backend::Fas).unwrap();
        roundtrip(&code.text);
    }

    #[test]
    fn printed_form_is_stable() {
        // print(parse(print(m))) == print(m): idempotence.
        let src = "model m pin (a)\nanalog\nmake x = 1 + 2 + 3\nendanalog\nendmodel\n";
        let p1 = print_model(&parse(src).unwrap());
        let p2 = print_model(&parse(&p1).unwrap());
        assert_eq!(p1, p2);
    }
}
