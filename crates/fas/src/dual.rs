//! Forward-mode automatic differentiation for the FAS interpreter.
//!
//! ELDO executed *compiled* models with analytic derivatives; the
//! interpreter's equivalent is a dual-number evaluation pass that produces
//! the model's pin currents **and** the exact Jacobian ∂i/∂v in a single
//! walk, instead of the `pins + 1` finite-difference evaluations the
//! generic bridge needs. For the 7-pin comparator this cuts the per-Newton-
//! iteration interpreter work by ~8×, which is what makes the paper's §5
//! behavioural-speedup ratio reachable.

/// Maximum number of simultaneous tangents (pins) the dual pass supports;
/// models with more pins fall back to finite differences.
pub const MAX_TANGENTS: usize = 8;

/// A dual number: value plus a fixed-width tangent vector.
///
/// The tangent lanes correspond to the model's pins; lane `j` carries
/// ∂value/∂v_pin_j. Lanes beyond the active pin count stay zero and cost
/// only predictable SIMD-friendly arithmetic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Dual {
    /// Value part.
    pub v: f64,
    /// Tangent vector.
    pub d: [f64; MAX_TANGENTS],
}

impl Dual {
    /// A constant (zero tangent).
    #[inline]
    pub fn constant(v: f64) -> Dual {
        Dual {
            v,
            d: [0.0; MAX_TANGENTS],
        }
    }

    /// The `j`-th independent variable with value `v`.
    #[inline]
    pub fn variable(v: f64, j: usize) -> Dual {
        let mut d = [0.0; MAX_TANGENTS];
        d[j] = 1.0;
        Dual { v, d }
    }

    /// Scales the tangent vector by `k` and maps the value by `f(v)`:
    /// the chain rule for a unary function with derivative `k` at `v`.
    #[inline]
    pub fn chain(self, value: f64, derivative: f64) -> Dual {
        let mut d = self.d;
        for x in &mut d {
            *x *= derivative;
        }
        Dual { v: value, d }
    }

    /// Scales every tangent by `k` (value unchanged semantics handled by
    /// the caller).
    #[inline]
    pub fn scale_tangent(self, k: f64) -> Dual {
        let mut d = self.d;
        for x in &mut d {
            *x *= k;
        }
        Dual { v: self.v, d }
    }
}

impl std::ops::Neg for Dual {
    type Output = Dual;

    #[inline]
    fn neg(self) -> Dual {
        let mut d = self.d;
        for x in &mut d {
            *x = -*x;
        }
        Dual { v: -self.v, d }
    }
}

impl std::ops::Add for Dual {
    type Output = Dual;

    #[inline]
    fn add(self, rhs: Dual) -> Dual {
        let mut d = self.d;
        for (a, b) in d.iter_mut().zip(rhs.d) {
            *a += b;
        }
        Dual {
            v: self.v + rhs.v,
            d,
        }
    }
}

impl std::ops::Sub for Dual {
    type Output = Dual;

    #[inline]
    fn sub(self, rhs: Dual) -> Dual {
        let mut d = self.d;
        for (a, b) in d.iter_mut().zip(rhs.d) {
            *a -= b;
        }
        Dual {
            v: self.v - rhs.v,
            d,
        }
    }
}

impl std::ops::Mul for Dual {
    type Output = Dual;

    /// Product rule.
    #[inline]
    fn mul(self, rhs: Dual) -> Dual {
        let mut d = [0.0; MAX_TANGENTS];
        #[allow(clippy::needless_range_loop)]
        for i in 0..MAX_TANGENTS {
            d[i] = self.d[i] * rhs.v + self.v * rhs.d[i];
        }
        Dual {
            v: self.v * rhs.v,
            d,
        }
    }
}

impl std::ops::Div for Dual {
    type Output = Dual;

    /// Quotient rule.
    #[inline]
    fn div(self, rhs: Dual) -> Dual {
        let inv = 1.0 / rhs.v;
        let v = self.v * inv;
        let mut d = [0.0; MAX_TANGENTS];
        #[allow(clippy::needless_range_loop)]
        for i in 0..MAX_TANGENTS {
            d[i] = (self.d[i] - v * rhs.d[i]) * inv;
        }
        Dual { v, d }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x(v: f64) -> Dual {
        Dual::variable(v, 0)
    }

    #[test]
    fn constants_and_variables() {
        let c = Dual::constant(3.0);
        assert_eq!(c.v, 3.0);
        assert!(c.d.iter().all(|&d| d == 0.0));
        let v = Dual::variable(2.0, 3);
        assert_eq!(v.d[3], 1.0);
        assert_eq!(v.d[0], 0.0);
    }

    #[test]
    fn arithmetic_rules() {
        let a = x(2.0);
        let b = Dual::constant(3.0);
        assert_eq!((a + b).v, 5.0);
        assert_eq!((a + b).d[0], 1.0);
        assert_eq!((a - b).d[0], 1.0);
        assert_eq!((a * b).v, 6.0);
        assert_eq!((a * b).d[0], 3.0);
        // d/dx (x²) = 2x.
        assert_eq!((a * a).d[0], 4.0);
        // d/dx (1/x) = -1/x².
        let inv = Dual::constant(1.0) / a;
        assert!((inv.d[0] + 0.25).abs() < 1e-15);
        assert_eq!((-a).d[0], -1.0);
    }

    #[test]
    fn quotient_rule() {
        // d/dx (x / (x+1)) = 1/(x+1)².
        let a = x(2.0);
        let q = a / (a + Dual::constant(1.0));
        assert!((q.d[0] - 1.0 / 9.0).abs() < 1e-15);
    }

    #[test]
    fn chain_rule_helper() {
        // sin(x) at x = 0.5.
        let a = x(0.5);
        let s = a.chain(a.v.sin(), a.v.cos());
        assert!((s.v - 0.5f64.sin()).abs() < 1e-15);
        assert!((s.d[0] - 0.5f64.cos()).abs() < 1e-15);
    }

    #[test]
    fn independent_lanes() {
        let a = Dual::variable(2.0, 0);
        let b = Dual::variable(3.0, 1);
        let p = a * b;
        assert_eq!(p.d[0], 3.0);
        assert_eq!(p.d[1], 2.0);
        assert_eq!(p.d[2], 0.0);
    }
}
