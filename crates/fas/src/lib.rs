//! An ELDO-FAS-like behavioural hardware description language.
//!
//! "Since no standard AHDL is available yet, ANACAD's ELDO-FAS language is
//! used" (paper §2.3). This crate implements the FAS dialect that
//! `gabm-codegen` emits, end to end:
//!
//! * [`lexer`] / [`parser`] — text → AST for `model … analog … endanalog`
//!   files, with `make` assignments, `if (mode=dc)` guards and the
//!   `volt.value` / `curr.on` / `state.*` access functions;
//! * [`compile`](mod@compile) — semantic analysis (declared pins/params, use before
//!   definition, forward references only inside `state.delay`) and lowering
//!   to an index-resolved executable form;
//! * [`machine`] — the interpreter: a [`machine::FasMachine`] implements
//!   `gabm-sim`'s [`BehavioralModel`](gabm_sim::devices::BehavioralModel),
//!   so a compiled FAS model drops into any circuit as a device and is
//!   solved together with transistor-level elements — exactly how ELDO
//!   co-simulates FAS macromodels with SPICE netlists.
//!
//! # Language semantics notes
//!
//! * `state.dt(x)` — time derivative `(x − x_prev)/dt`, where `x_prev` is
//!   committed at the last accepted time point; `0` in DC.
//! * `state.delay(y)` — the value of variable `y` at the previous accepted
//!   time point (the paper's "variable delay element, duration: 1 current
//!   time step"). Forward references are legal: the delay reads committed
//!   state only.
//! * `timestep` — the current step of the simulation engine. In DC it
//!   reads as a very large pseudo-step (1e9 s), which makes slope-limiter
//!   patterns like the slew-rate construct degenerate gracefully to
//!   `y = u` at the operating point.
//!
//! # Example
//!
//! ```
//! use gabm_fas::compile;
//!
//! # fn main() -> Result<(), gabm_fas::FasError> {
//! let src = "\
//! model load pin (a) param (g=1.0e-3)
//! analog
//! make v1 = volt.value(a)
//! make curr.on(a) = g * v1
//! endanalog
//! endmodel
//! ";
//! let model = compile(src)?;
//! assert_eq!(model.pins(), ["a"]);
//! # Ok(())
//! # }
//! ```

pub mod ast;
pub mod compile;
pub mod dual;
pub mod lexer;
pub mod machine;
pub mod parser;
pub mod printer;
pub mod testgen;

pub use compile::{compile, CompiledModel};
pub use machine::FasMachine;
pub use parser::parse;
pub use printer::print_model;

use std::fmt;

/// Position in the source text (1-based line, 1-based column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Pos {
    /// Line number.
    pub line: usize,
    /// Column number.
    pub col: usize,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Errors of the FAS front end and runtime.
#[derive(Debug, Clone, PartialEq)]
pub enum FasError {
    /// Lexical error.
    Lex {
        /// Location.
        pos: Pos,
        /// Description.
        message: String,
    },
    /// Syntax error.
    Parse {
        /// Location.
        pos: Pos,
        /// Description.
        message: String,
    },
    /// Semantic error (undeclared pin, use before definition, …).
    Semantic(String),
    /// Instantiation-time error (unknown parameter override).
    Instantiate(String),
}

impl fmt::Display for FasError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FasError::Lex { pos, message } => write!(f, "lex error at {pos}: {message}"),
            FasError::Parse { pos, message } => write!(f, "parse error at {pos}: {message}"),
            FasError::Semantic(msg) => write!(f, "semantic error: {msg}"),
            FasError::Instantiate(msg) => write!(f, "instantiation error: {msg}"),
        }
    }
}

impl std::error::Error for FasError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = FasError::Parse {
            pos: Pos { line: 3, col: 7 },
            message: "expected make".into(),
        };
        assert!(e.to_string().contains("3:7"));
        assert!(FasError::Semantic("x".into()).to_string().contains("x"));
    }
}
