//! Semantic analysis and lowering to an index-resolved executable form.

use crate::ast::{BinOp, Cond, Expr, Model, RelOp, Stmt, UnaryOp};
use crate::parser::parse;
use crate::FasError;
use std::collections::{BTreeMap, HashMap, HashSet};

/// One-argument intrinsic functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Func1 {
    Sin,
    Cos,
    Exp,
    Ln,
    Abs,
    Sqrt,
    Tanh,
    Atan,
}

impl Func1 {
    /// Evaluates the intrinsic. Every consumer (interpreter, bytecode VM,
    /// constant folders) must call this so all layers agree bit for bit.
    pub fn apply(self, x: f64) -> f64 {
        match self {
            Func1::Sin => x.sin(),
            Func1::Cos => x.cos(),
            Func1::Exp => x.exp(),
            Func1::Ln => x.ln(),
            Func1::Abs => x.abs(),
            Func1::Sqrt => x.sqrt(),
            Func1::Tanh => x.tanh(),
            Func1::Atan => x.atan(),
        }
    }
}

/// Two-argument intrinsic functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Func2 {
    Min,
    Max,
    Pow,
}

impl Func2 {
    /// Evaluates the intrinsic (value lane semantics: `f64::min`/`max`).
    pub fn apply(self, a: f64, b: f64) -> f64 {
        match self {
            Func2::Min => a.min(b),
            Func2::Max => a.max(b),
            Func2::Pow => a.powf(b),
        }
    }
}

/// Index-resolved expression: the executable tree form the interpreter
/// walks and the bytecode compiler (`gabm-fasvm`) lowers further.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)]
pub enum CExpr {
    Num(f64),
    Var(usize),
    Param(usize),
    PinValue(usize),
    Time,
    Temp,
    TimeStep,
    Neg(Box<CExpr>),
    Bin(BinOp, Box<CExpr>, Box<CExpr>),
    Call1(Func1, Box<CExpr>),
    Call2(Func2, Box<CExpr>, Box<CExpr>),
    Limit(Box<CExpr>, Box<CExpr>, Box<CExpr>),
    /// `state.dt(arg)` — time derivative instance `inst`.
    Dt {
        inst: usize,
        arg: Box<CExpr>,
    },
    /// `state.delay(var)` — the committed value of `var`.
    Delay {
        var: usize,
    },
    /// `state.delayt(var, td)` — `var` delayed by `td` seconds.
    DelayT {
        inst: usize,
        var: usize,
        td: Box<CExpr>,
    },
    /// `state.idt(arg)` — running integral instance `inst`.
    Idt {
        inst: usize,
        arg: Box<CExpr>,
    },
}

/// Index-resolved condition.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)]
pub enum CCond {
    ModeIs(bool),
    Cmp(RelOp, CExpr, CExpr),
}

/// Index-resolved statement.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)]
pub enum CStmt {
    Set(usize, CExpr),
    Impose(usize, CExpr),
    If(CCond, Vec<CStmt>, Vec<CStmt>),
}

/// A compiled FAS model, ready to instantiate as a simulator device.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledModel {
    pub(crate) name: String,
    pub(crate) pins: Vec<String>,
    pub(crate) params: Vec<(String, f64)>,
    pub(crate) var_names: Vec<String>,
    pub(crate) body: Vec<CStmt>,
    pub(crate) n_dt: usize,
    pub(crate) n_delayt: usize,
    pub(crate) n_idt: usize,
}

impl CompiledModel {
    /// Model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Pin names in device-pin order.
    pub fn pins(&self) -> Vec<&str> {
        self.pins.iter().map(String::as_str).collect()
    }

    /// Parameter names and defaults.
    pub fn params(&self) -> &[(String, f64)] {
        &self.params
    }

    /// Variable names in slot order.
    pub fn var_names(&self) -> &[String] {
        &self.var_names
    }

    /// Lowered analog body.
    pub fn body(&self) -> &[CStmt] {
        &self.body
    }

    /// Number of `state.dt` instances.
    pub fn n_dt(&self) -> usize {
        self.n_dt
    }

    /// Number of `state.delayt` instances.
    pub fn n_delayt(&self) -> usize {
        self.n_delayt
    }

    /// Number of `state.idt` instances.
    pub fn n_idt(&self) -> usize {
        self.n_idt
    }

    /// Resolves parameter overrides to a dense value vector in
    /// declaration order. Shared by every backend that instantiates
    /// this model so override validation stays identical.
    ///
    /// # Errors
    ///
    /// [`FasError::Instantiate`] for overrides of undeclared parameters.
    pub fn param_values(&self, overrides: &BTreeMap<String, f64>) -> Result<Vec<f64>, FasError> {
        let mut values: Vec<f64> = self.params.iter().map(|(_, v)| *v).collect();
        for (name, value) in overrides {
            match self.params.iter().position(|(n, _)| n == name) {
                Some(idx) => values[idx] = *value,
                None => {
                    return Err(FasError::Instantiate(format!(
                        "model {} has no parameter '{name}'",
                        self.name
                    )))
                }
            }
        }
        Ok(values)
    }

    /// Instantiates the model with parameter overrides.
    ///
    /// # Errors
    ///
    /// [`FasError::Instantiate`] for overrides of undeclared parameters.
    pub fn instantiate(
        &self,
        overrides: &BTreeMap<String, f64>,
    ) -> Result<crate::machine::FasMachine, FasError> {
        let values = self.param_values(overrides)?;
        Ok(crate::machine::FasMachine::new(self.clone(), values))
    }
}

/// Parses and compiles a model file.
///
/// # Errors
///
/// Lexical, syntax or semantic errors.
pub fn compile(src: &str) -> Result<CompiledModel, FasError> {
    let model = parse(src)?;
    lower(model)
}

struct Lowerer {
    pins: HashMap<String, usize>,
    params: HashMap<String, usize>,
    vars: HashMap<String, usize>,
    var_names: Vec<String>,
}

const ACROSS_PREFIXES: [&str; 3] = ["volt", "omega", "temp"];
const THROUGH_PREFIXES: [&str; 3] = ["curr", "torque", "heat"];

fn lower(model: Model) -> Result<CompiledModel, FasError> {
    let mut pins = HashMap::new();
    for (i, p) in model.pins.iter().enumerate() {
        if pins.insert(p.clone(), i).is_some() {
            return Err(FasError::Semantic(format!("duplicate pin '{p}'")));
        }
    }
    let mut params = HashMap::new();
    for (i, (p, _)) in model.params.iter().enumerate() {
        if params.insert(p.clone(), i).is_some() {
            return Err(FasError::Semantic(format!("duplicate parameter '{p}'")));
        }
    }
    for builtin in ["time", "temp", "timestep", "mode"] {
        if params.contains_key(builtin) {
            return Err(FasError::Semantic(format!(
                "parameter '{builtin}' shadows a builtin"
            )));
        }
    }
    // Collect all assigned variables.
    let mut lw = Lowerer {
        pins,
        params,
        vars: HashMap::new(),
        var_names: Vec::new(),
    };
    collect_vars(&model.body, &mut lw)?;
    // Use-before-definition analysis (forward references allowed only in
    // state.delay / state.delayt).
    let mut defined: HashSet<usize> = HashSet::new();
    check_order(&model.body, &lw, &mut defined)?;
    // Lower.
    let body = lower_stmts(&model.body, &lw)?;
    Ok(CompiledModel {
        name: model.name,
        pins: model.pins,
        params: model.params,
        var_names: lw.var_names,
        body,
        n_dt: model.n_dt,
        n_delayt: model.n_delayt,
        n_idt: model.n_idt,
    })
}

fn collect_vars(stmts: &[Stmt], lw: &mut Lowerer) -> Result<(), FasError> {
    for stmt in stmts {
        match stmt {
            Stmt::Make { var, .. } => {
                if lw.params.contains_key(var) {
                    return Err(FasError::Semantic(format!(
                        "cannot assign to parameter '{var}'"
                    )));
                }
                if ["time", "temp", "timestep", "mode"].contains(&var.as_str()) {
                    return Err(FasError::Semantic(format!(
                        "cannot assign to builtin '{var}'"
                    )));
                }
                if !lw.vars.contains_key(var) {
                    lw.vars.insert(var.clone(), lw.var_names.len());
                    lw.var_names.push(var.clone());
                }
            }
            Stmt::Impose { .. } => {}
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                collect_vars(then_branch, lw)?;
                collect_vars(else_branch, lw)?;
            }
        }
    }
    Ok(())
}

fn check_order(stmts: &[Stmt], lw: &Lowerer, defined: &mut HashSet<usize>) -> Result<(), FasError> {
    for stmt in stmts {
        match stmt {
            Stmt::Make { var, expr, .. } => {
                check_expr_order(expr, lw, defined)?;
                defined.insert(lw.vars[var]);
            }
            Stmt::Impose { expr, .. } => check_expr_order(expr, lw, defined)?,
            Stmt::If {
                cond,
                then_branch,
                else_branch,
                ..
            } => {
                if let Cond::Cmp(_, a, b) = cond {
                    check_expr_order(a, lw, defined)?;
                    check_expr_order(b, lw, defined)?;
                }
                let mut then_defined = defined.clone();
                check_order(then_branch, lw, &mut then_defined)?;
                let mut else_defined = defined.clone();
                check_order(else_branch, lw, &mut else_defined)?;
                // Only variables defined on both paths are definitely
                // available afterwards.
                for v in then_defined.intersection(&else_defined) {
                    defined.insert(*v);
                }
            }
        }
    }
    Ok(())
}

fn check_expr_order(expr: &Expr, lw: &Lowerer, defined: &HashSet<usize>) -> Result<(), FasError> {
    match expr {
        Expr::Num(_) | Expr::PinValue { .. } => Ok(()),
        Expr::Var(name) => {
            if lw.params.contains_key(name) || ["time", "temp", "timestep"].contains(&name.as_str())
            {
                return Ok(());
            }
            match lw.vars.get(name) {
                Some(id) if defined.contains(id) => Ok(()),
                Some(_) => Err(FasError::Semantic(format!(
                    "variable '{name}' used before it is assigned (forward references are only legal inside state.delay)"
                ))),
                None => Err(FasError::Semantic(format!("unknown identifier '{name}'"))),
            }
        }
        Expr::Unary(_, e) | Expr::StateDt { arg: e, .. } | Expr::StateIdt { arg: e, .. } => {
            check_expr_order(e, lw, defined)
        }
        Expr::Binary(_, a, b) => {
            check_expr_order(a, lw, defined)?;
            check_expr_order(b, lw, defined)
        }
        Expr::Call { args, .. } => {
            for a in args {
                check_expr_order(a, lw, defined)?;
            }
            Ok(())
        }
        Expr::StateDelay { var } | Expr::StateDelayT { var, .. } => {
            // Forward references read committed state: legal as long as the
            // variable is assigned *somewhere* in the model.
            if lw.vars.contains_key(var) {
                if let Expr::StateDelayT { td, .. } = expr {
                    check_expr_order(td, lw, defined)?;
                }
                Ok(())
            } else {
                Err(FasError::Semantic(format!(
                    "state.delay of unknown variable '{var}'"
                )))
            }
        }
    }
}

fn lower_stmts(stmts: &[Stmt], lw: &Lowerer) -> Result<Vec<CStmt>, FasError> {
    stmts.iter().map(|s| lower_stmt(s, lw)).collect()
}

fn lower_stmt(stmt: &Stmt, lw: &Lowerer) -> Result<CStmt, FasError> {
    match stmt {
        Stmt::Make { var, expr, .. } => Ok(CStmt::Set(lw.vars[var], lower_expr(expr, lw)?)),
        Stmt::Impose {
            quantity,
            pin,
            expr,
            ..
        } => {
            if !THROUGH_PREFIXES.contains(&quantity.as_str()) {
                return Err(FasError::Semantic(format!(
                    "'{quantity}.on' is not a through-quantity imposition (expected one of {THROUGH_PREFIXES:?})"
                )));
            }
            let pin_id = *lw
                .pins
                .get(pin)
                .ok_or_else(|| FasError::Semantic(format!("undeclared pin '{pin}'")))?;
            Ok(CStmt::Impose(pin_id, lower_expr(expr, lw)?))
        }
        Stmt::If {
            cond,
            then_branch,
            else_branch,
            ..
        } => {
            let ccond = match cond {
                Cond::ModeIs { dc } => CCond::ModeIs(*dc),
                Cond::Cmp(op, a, b) => CCond::Cmp(*op, lower_expr(a, lw)?, lower_expr(b, lw)?),
            };
            Ok(CStmt::If(
                ccond,
                lower_stmts(then_branch, lw)?,
                lower_stmts(else_branch, lw)?,
            ))
        }
    }
}

fn lower_expr(expr: &Expr, lw: &Lowerer) -> Result<CExpr, FasError> {
    Ok(match expr {
        Expr::Num(v) => CExpr::Num(*v),
        Expr::Var(name) => match name.as_str() {
            "time" => CExpr::Time,
            "temp" => CExpr::Temp,
            "timestep" => CExpr::TimeStep,
            _ => {
                if let Some(&p) = lw.params.get(name) {
                    CExpr::Param(p)
                } else if let Some(&v) = lw.vars.get(name) {
                    CExpr::Var(v)
                } else {
                    return Err(FasError::Semantic(format!("unknown identifier '{name}'")));
                }
            }
        },
        Expr::PinValue { quantity, pin } => {
            if !ACROSS_PREFIXES.contains(&quantity.as_str()) {
                return Err(FasError::Semantic(format!(
                    "'{quantity}.value' is not an across-quantity probe (expected one of {ACROSS_PREFIXES:?})"
                )));
            }
            let pin_id = *lw
                .pins
                .get(pin)
                .ok_or_else(|| FasError::Semantic(format!("undeclared pin '{pin}'")))?;
            CExpr::PinValue(pin_id)
        }
        Expr::Unary(UnaryOp::Neg, e) => CExpr::Neg(Box::new(lower_expr(e, lw)?)),
        Expr::Binary(op, a, b) => CExpr::Bin(
            *op,
            Box::new(lower_expr(a, lw)?),
            Box::new(lower_expr(b, lw)?),
        ),
        Expr::Call { func, args } => lower_call(func, args, lw)?,
        Expr::StateDt { inst, arg } => CExpr::Dt {
            inst: *inst,
            arg: Box::new(lower_expr(arg, lw)?),
        },
        Expr::StateDelay { var } => CExpr::Delay { var: lw.vars[var] },
        Expr::StateDelayT { inst, var, td } => CExpr::DelayT {
            inst: *inst,
            var: lw.vars[var],
            td: Box::new(lower_expr(td, lw)?),
        },
        Expr::StateIdt { inst, arg } => CExpr::Idt {
            inst: *inst,
            arg: Box::new(lower_expr(arg, lw)?),
        },
    })
}

fn lower_call(func: &str, args: &[Expr], lw: &Lowerer) -> Result<CExpr, FasError> {
    let arity_err = |want: usize| {
        Err(FasError::Semantic(format!(
            "function '{func}' takes {want} argument(s), got {}",
            args.len()
        )))
    };
    let f1 = |f: Func1, args: &[Expr], lw: &Lowerer| -> Result<CExpr, FasError> {
        Ok(CExpr::Call1(f, Box::new(lower_expr(&args[0], lw)?)))
    };
    let f2 = |f: Func2, args: &[Expr], lw: &Lowerer| -> Result<CExpr, FasError> {
        Ok(CExpr::Call2(
            f,
            Box::new(lower_expr(&args[0], lw)?),
            Box::new(lower_expr(&args[1], lw)?),
        ))
    };
    match func {
        "sin" | "cos" | "exp" | "ln" | "abs" | "sqrt" | "tanh" | "atan" => {
            if args.len() != 1 {
                return arity_err(1);
            }
            let f = match func {
                "sin" => Func1::Sin,
                "cos" => Func1::Cos,
                "exp" => Func1::Exp,
                "ln" => Func1::Ln,
                "abs" => Func1::Abs,
                "sqrt" => Func1::Sqrt,
                "tanh" => Func1::Tanh,
                _ => Func1::Atan,
            };
            f1(f, args, lw)
        }
        "min" | "max" | "pow" => {
            if args.len() != 2 {
                return arity_err(2);
            }
            let f = match func {
                "min" => Func2::Min,
                "max" => Func2::Max,
                _ => Func2::Pow,
            };
            f2(f, args, lw)
        }
        "limit" => {
            if args.len() != 3 {
                return arity_err(3);
            }
            Ok(CExpr::Limit(
                Box::new(lower_expr(&args[0], lw)?),
                Box::new(lower_expr(&args[1], lw)?),
                Box::new(lower_expr(&args[2], lw)?),
            ))
        }
        other => Err(FasError::Semantic(format!("unknown function '{other}'"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wrap(body: &str) -> String {
        format!("model m pin (a, b) param (g=1e-3)\nanalog\n{body}\nendanalog\nendmodel\n")
    }

    #[test]
    fn compiles_basic_model() {
        let m = compile(&wrap("make v = volt.value(a)\nmake curr.on(a) = g * v")).unwrap();
        assert_eq!(m.name(), "m");
        assert_eq!(m.pins(), ["a", "b"]);
        assert_eq!(m.params().len(), 1);
        assert_eq!(m.var_names, vec!["v"]);
    }

    #[test]
    fn undeclared_pin_rejected() {
        assert!(compile(&wrap("make v = volt.value(zz)")).is_err());
        assert!(compile(&wrap("make curr.on(zz) = 1")).is_err());
    }

    #[test]
    fn use_before_def_rejected() {
        let err = compile(&wrap("make x = y\nmake y = 1")).unwrap_err();
        assert!(err.to_string().contains("before"), "{err}");
    }

    #[test]
    fn forward_reference_in_delay_allowed() {
        assert!(compile(&wrap("make x = state.delay(y)\nmake y = x + 1")).is_ok());
    }

    #[test]
    fn delay_of_unknown_var_rejected() {
        assert!(compile(&wrap("make x = state.delay(zz)")).is_err());
    }

    #[test]
    fn branch_definition_rules() {
        // Defined in both branches ⇒ usable after.
        assert!(compile(&wrap(
            "if (mode=dc) then\nmake x = 0\nelse\nmake x = 1\nendif\nmake y = x"
        ))
        .is_ok());
        // Defined only in one branch ⇒ not definitely assigned.
        assert!(compile(&wrap("if (mode=dc) then\nmake x = 0\nendif\nmake y = x")).is_err());
    }

    #[test]
    fn parameter_assignment_rejected() {
        assert!(compile(&wrap("make g = 1")).is_err());
        assert!(compile(&wrap("make time = 1")).is_err());
    }

    #[test]
    fn bad_prefixes_rejected() {
        assert!(compile(&wrap("make v = curr.value(a)")).is_err());
        assert!(compile(&wrap("make volt.on(a) = 1")).is_err());
    }

    #[test]
    fn arity_checked() {
        assert!(compile(&wrap("make x = sin(1, 2)")).is_err());
        assert!(compile(&wrap("make x = max(1)")).is_err());
        assert!(compile(&wrap("make x = limit(1, 2)")).is_err());
        assert!(compile(&wrap("make x = frobnicate(1)")).is_err());
    }

    #[test]
    fn instantiate_with_overrides() {
        let m = compile(&wrap("make v = volt.value(a)\nmake curr.on(a) = g * v")).unwrap();
        let mut o = BTreeMap::new();
        o.insert("g".to_string(), 2e-3);
        assert!(m.instantiate(&o).is_ok());
        let mut bad = BTreeMap::new();
        bad.insert("zz".to_string(), 1.0);
        assert!(m.instantiate(&bad).is_err());
    }

    #[test]
    fn func_eval_helpers() {
        assert_eq!(Func1::Abs.apply(-2.0), 2.0);
        assert_eq!(Func2::Max.apply(1.0, 2.0), 2.0);
        assert_eq!(Func2::Pow.apply(2.0, 3.0), 8.0);
        assert!((Func1::Tanh.apply(100.0) - 1.0).abs() < 1e-12);
    }
}
