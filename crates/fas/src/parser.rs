//! Recursive-descent parser for FAS model files.

use crate::ast::{BinOp, Cond, Expr, Model, RelOp, Stmt, UnaryOp};
use crate::lexer::{tokenize, Spanned, Token};
use crate::{FasError, Pos};

/// Parses one FAS model file.
///
/// # Errors
///
/// [`FasError::Lex`] / [`FasError::Parse`] with positions.
pub fn parse(src: &str) -> Result<Model, FasError> {
    let tokens = tokenize(src)?;
    let mut p = Parser {
        tokens,
        idx: 0,
        n_dt: 0,
        n_delayt: 0,
        n_idt: 0,
    };
    p.model()
}

struct Parser {
    tokens: Vec<Spanned>,
    idx: usize,
    n_dt: usize,
    n_delayt: usize,
    n_idt: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.idx].token
    }

    fn pos(&self) -> Pos {
        self.tokens[self.idx].pos
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.idx].token.clone();
        if self.idx + 1 < self.tokens.len() {
            self.idx += 1;
        }
        t
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, FasError> {
        Err(FasError::Parse {
            pos: self.pos(),
            message: message.into(),
        })
    }

    fn expect(&mut self, want: &Token, what: &str) -> Result<(), FasError> {
        if self.peek() == want {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected {what}, found {:?}", self.peek()))
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), FasError> {
        if self.peek().is_ident(kw) {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected '{kw}', found {:?}", self.peek()))
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, FasError> {
        match self.peek().clone() {
            Token::Ident(name) => {
                self.bump();
                Ok(name)
            }
            other => self.err(format!("expected {what}, found {other:?}")),
        }
    }

    fn number(&mut self) -> Result<f64, FasError> {
        let neg = if *self.peek() == Token::Minus {
            self.bump();
            true
        } else {
            false
        };
        match *self.peek() {
            Token::Number(v) => {
                self.bump();
                Ok(if neg { -v } else { v })
            }
            _ => self.err("expected number"),
        }
    }

    fn model(&mut self) -> Result<Model, FasError> {
        self.expect_keyword("model")?;
        let name = self.ident("model name")?;
        self.expect_keyword("pin")?;
        self.expect(&Token::LParen, "'('")?;
        let mut pins = vec![self.ident("pin name")?];
        while *self.peek() == Token::Comma {
            self.bump();
            pins.push(self.ident("pin name")?);
        }
        self.expect(&Token::RParen, "')'")?;
        let mut params = Vec::new();
        if self.peek().is_ident("param") {
            self.bump();
            self.expect(&Token::LParen, "'('")?;
            loop {
                let pname = self.ident("parameter name")?;
                self.expect(&Token::Eq, "'='")?;
                let value = self.number()?;
                params.push((pname, value));
                if *self.peek() == Token::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
            self.expect(&Token::RParen, "')'")?;
        }
        self.expect_keyword("analog")?;
        let body = self.statements(&["endanalog"])?;
        self.expect_keyword("endanalog")?;
        self.expect_keyword("endmodel")?;
        if *self.peek() != Token::Eof {
            return self.err("trailing input after endmodel");
        }
        Ok(Model {
            name,
            pins,
            params,
            body,
            n_dt: self.n_dt,
            n_delayt: self.n_delayt,
            n_idt: self.n_idt,
        })
    }

    /// Parses statements until one of the stop keywords (not consumed).
    fn statements(&mut self, stops: &[&str]) -> Result<Vec<Stmt>, FasError> {
        let mut out = Vec::new();
        loop {
            match self.peek() {
                Token::Ident(kw) if stops.iter().any(|s| kw == s) => return Ok(out),
                Token::Ident(kw) if kw == "make" => {
                    let pos = self.pos();
                    self.bump();
                    out.push(self.make_stmt(pos)?);
                }
                Token::Ident(kw) if kw == "if" => {
                    let pos = self.pos();
                    self.bump();
                    out.push(self.if_stmt(pos)?);
                }
                Token::Eof => return self.err("unexpected end of file inside analog body"),
                other => return self.err(format!("expected statement, found {other:?}")),
            }
        }
    }

    fn make_stmt(&mut self, pos: Pos) -> Result<Stmt, FasError> {
        let first = self.ident("variable or access prefix")?;
        if *self.peek() == Token::Dot {
            // make curr.on(pin) = expr
            self.bump();
            self.expect_keyword("on")?;
            self.expect(&Token::LParen, "'('")?;
            let pin = self.ident("pin name")?;
            self.expect(&Token::RParen, "')'")?;
            self.expect(&Token::Eq, "'='")?;
            let expr = self.expr()?;
            Ok(Stmt::Impose {
                quantity: first,
                pin,
                expr,
                pos,
            })
        } else {
            self.expect(&Token::Eq, "'='")?;
            let expr = self.expr()?;
            Ok(Stmt::Make {
                var: first,
                expr,
                pos,
            })
        }
    }

    fn if_stmt(&mut self, pos: Pos) -> Result<Stmt, FasError> {
        self.expect(&Token::LParen, "'('")?;
        let cond = self.condition()?;
        self.expect(&Token::RParen, "')'")?;
        self.expect_keyword("then")?;
        let then_branch = self.statements(&["else", "endif"])?;
        let else_branch = if self.peek().is_ident("else") {
            self.bump();
            self.statements(&["endif"])?
        } else {
            Vec::new()
        };
        self.expect_keyword("endif")?;
        Ok(Stmt::If {
            cond,
            then_branch,
            else_branch,
            pos,
        })
    }

    fn condition(&mut self) -> Result<Cond, FasError> {
        if self.peek().is_ident("mode") {
            self.bump();
            self.expect(&Token::Eq, "'='")?;
            let mode = self.ident("'dc' or 'tran'")?;
            return match mode.as_str() {
                "dc" => Ok(Cond::ModeIs { dc: true }),
                "tran" => Ok(Cond::ModeIs { dc: false }),
                other => self.err(format!("unknown mode '{other}'")),
            };
        }
        let lhs = self.expr()?;
        let op = match self.bump() {
            Token::Eq => RelOp::Eq,
            Token::Ne => RelOp::Ne,
            Token::Lt => RelOp::Lt,
            Token::Le => RelOp::Le,
            Token::Gt => RelOp::Gt,
            Token::Ge => RelOp::Ge,
            other => return self.err(format!("expected comparison operator, found {other:?}")),
        };
        let rhs = self.expr()?;
        Ok(Cond::Cmp(op, lhs, rhs))
    }

    fn expr(&mut self) -> Result<Expr, FasError> {
        let mut lhs = self.term()?;
        loop {
            let op = match self.peek() {
                Token::Plus => BinOp::Add,
                Token::Minus => BinOp::Sub,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.term()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn term(&mut self) -> Result<Expr, FasError> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                Token::Star => BinOp::Mul,
                Token::Slash => BinOp::Div,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.unary()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn unary(&mut self) -> Result<Expr, FasError> {
        if *self.peek() == Token::Minus {
            self.bump();
            let inner = self.unary()?;
            return Ok(Expr::Unary(UnaryOp::Neg, Box::new(inner)));
        }
        if *self.peek() == Token::Plus {
            self.bump();
            return self.unary();
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, FasError> {
        match self.peek().clone() {
            Token::Number(v) => {
                self.bump();
                Ok(Expr::Num(v))
            }
            Token::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(&Token::RParen, "')'")?;
                Ok(e)
            }
            Token::Ident(name) => {
                self.bump();
                match self.peek() {
                    Token::Dot => {
                        self.bump();
                        let method = self.ident("access method")?;
                        if name == "state" {
                            self.state_access(&method)
                        } else if method == "value" {
                            self.expect(&Token::LParen, "'('")?;
                            let pin = self.ident("pin name")?;
                            self.expect(&Token::RParen, "')'")?;
                            Ok(Expr::PinValue {
                                quantity: name,
                                pin,
                            })
                        } else {
                            self.err(format!("unknown access '{name}.{method}'"))
                        }
                    }
                    Token::LParen => {
                        self.bump();
                        let mut args = vec![self.expr()?];
                        while *self.peek() == Token::Comma {
                            self.bump();
                            args.push(self.expr()?);
                        }
                        self.expect(&Token::RParen, "')'")?;
                        Ok(Expr::Call { func: name, args })
                    }
                    _ => Ok(Expr::Var(name)),
                }
            }
            other => self.err(format!("expected expression, found {other:?}")),
        }
    }

    fn state_access(&mut self, method: &str) -> Result<Expr, FasError> {
        self.expect(&Token::LParen, "'('")?;
        let expr = match method {
            "dt" => {
                let arg = self.expr()?;
                let inst = self.n_dt;
                self.n_dt += 1;
                Expr::StateDt {
                    inst,
                    arg: Box::new(arg),
                }
            }
            "delay" => {
                let var = self.ident("delayed variable")?;
                Expr::StateDelay { var }
            }
            "delayt" => {
                let var = self.ident("delayed variable")?;
                self.expect(&Token::Comma, "','")?;
                let td = self.expr()?;
                let inst = self.n_delayt;
                self.n_delayt += 1;
                Expr::StateDelayT {
                    inst,
                    var,
                    td: Box::new(td),
                }
            }
            "idt" => {
                let arg = self.expr()?;
                let inst = self.n_idt;
                self.n_idt += 1;
                Expr::StateIdt {
                    inst,
                    arg: Box::new(arg),
                }
            }
            other => return self.err(format!("unknown state access 'state.{other}'")),
        };
        self.expect(&Token::RParen, "')'")?;
        Ok(expr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const INPUT_STAGE: &str = "\
model input_stage pin (in) param (gin=1e-6, cin=5e-12)
analog
make v2 = volt.value(in)
if (mode=dc) then
make yd4 = 0
else
make yd4 = state.dt(v2)
endif
make yout5 = cin * yd4
make yout6 = gin * v2
make yout7 = yout5 + yout6
make curr.on(in) = yout7
endanalog
endmodel
";

    #[test]
    fn parses_paper_listing() {
        let m = parse(INPUT_STAGE).unwrap();
        assert_eq!(m.name, "input_stage");
        assert_eq!(m.pins, vec!["in"]);
        assert_eq!(m.params, vec![("gin".into(), 1e-6), ("cin".into(), 5e-12)]);
        assert_eq!(m.body.len(), 6);
        assert_eq!(m.n_dt, 1);
        match &m.body[0] {
            Stmt::Make { var, expr, .. } => {
                assert_eq!(var, "v2");
                assert_eq!(
                    *expr,
                    Expr::PinValue {
                        quantity: "volt".into(),
                        pin: "in".into()
                    }
                );
            }
            other => panic!("unexpected {other:?}"),
        }
        match &m.body[1] {
            Stmt::If {
                cond,
                then_branch,
                else_branch,
                ..
            } => {
                assert_eq!(*cond, Cond::ModeIs { dc: true });
                assert_eq!(then_branch.len(), 1);
                assert_eq!(else_branch.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
        match m.body.last().unwrap() {
            Stmt::Impose { quantity, pin, .. } => {
                assert_eq!(quantity, "curr");
                assert_eq!(pin, "in");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn precedence() {
        let m =
            parse("model m pin (a)\nanalog\nmake x = 1 + 2 * 3\nendanalog\nendmodel\n").unwrap();
        match &m.body[0] {
            Stmt::Make { expr, .. } => match expr {
                Expr::Binary(BinOp::Add, l, r) => {
                    assert_eq!(**l, Expr::Num(1.0));
                    assert!(matches!(**r, Expr::Binary(BinOp::Mul, _, _)));
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unary_minus_and_parens() {
        let m = parse("model m pin (a)\nanalog\nmake x = -(1 + 2) / -3\nendanalog\nendmodel\n")
            .unwrap();
        assert_eq!(m.body.len(), 1);
    }

    #[test]
    fn function_calls() {
        let m = parse(
            "model m pin (a)\nanalog\nmake x = limit(sin(time), -1, max(0, 1))\nendanalog\nendmodel\n",
        )
        .unwrap();
        match &m.body[0] {
            Stmt::Make { expr, .. } => match expr {
                Expr::Call { func, args } => {
                    assert_eq!(func, "limit");
                    assert_eq!(args.len(), 3);
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn state_delay_forms() {
        let m = parse(
            "model m pin (a)\nanalog\nmake y = state.delay(y) + state.delayt(y, 1e-6) + state.idt(y)\nendanalog\nendmodel\n",
        )
        .unwrap();
        assert_eq!(m.n_delayt, 1);
        assert_eq!(m.n_idt, 1);
    }

    #[test]
    fn comparison_conditions() {
        let m = parse(
            "model m pin (a)\nanalog\nif (volt.value(a) > 2.5) then\nmake x = 1\nelse\nmake x = 0\nendif\nendanalog\nendmodel\n",
        )
        .unwrap();
        match &m.body[0] {
            Stmt::If { cond, .. } => assert!(matches!(cond, Cond::Cmp(RelOp::Gt, _, _))),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn nested_if() {
        let m = parse(
            "model m pin (a)\nanalog\nif (mode=tran) then\nif (time > 1) then\nmake x = 1\nendif\nendif\nendanalog\nendmodel\n",
        )
        .unwrap();
        assert_eq!(m.body.len(), 1);
    }

    #[test]
    fn parse_errors() {
        assert!(parse("model m\n").is_err());
        assert!(parse("model m pin (a)\nanalog\nmake = 1\nendanalog\nendmodel\n").is_err());
        assert!(
            parse("model m pin (a)\nanalog\nmake x = state.zz(y)\nendanalog\nendmodel\n").is_err()
        );
        assert!(parse("model m pin (a)\nanalog\nmake x = 1\nendanalog\nendmodel\nextra").is_err());
        assert!(parse(
            "model m pin (a)\nanalog\nif (mode=ac) then\nmake x=1\nendif\nendanalog\nendmodel\n"
        )
        .is_err());
        assert!(parse("model m pin (a)\nanalog\nmake x = 1\n").is_err());
    }

    #[test]
    fn multiple_pins_and_no_params() {
        let m = parse("model m pin (a, b, c)\nanalog\nmake x = 1\nendanalog\nendmodel\n").unwrap();
        assert_eq!(m.pins.len(), 3);
        assert!(m.params.is_empty());
    }

    #[test]
    fn negative_param_default() {
        let m = parse("model m pin (a) param (v=-2.5)\nanalog\nmake x = v\nendanalog\nendmodel\n")
            .unwrap();
        assert_eq!(m.params[0].1, -2.5);
    }
}
