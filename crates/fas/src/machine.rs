//! The FAS interpreter: executes a compiled model inside the simulator.

use crate::compile::{CCond, CExpr, CStmt, CompiledModel};
use crate::dual::{Dual, MAX_TANGENTS};
use gabm_sim::devices::{BehavioralModel, EvalCtx};
use std::collections::VecDeque;

/// Pseudo time step reported by `timestep` during DC solves. Large enough
/// that slope-limiter patterns (slew rate) never clip at the operating
/// point, so `y = ylast + ((u − ylast)/dt)·dt = u` holds exactly.
pub const DC_PSEUDO_DT: f64 = 1.0e9;

/// An executable instance of a [`CompiledModel`].
///
/// Implements [`BehavioralModel`], so it can be attached to a circuit with
/// [`gabm_sim::Circuit::add_behavioral`]. Evaluation is pure with respect to
/// committed state; state commits happen in [`BehavioralModel::accept`].
#[derive(Debug, Clone)]
pub struct FasMachine {
    model: CompiledModel,
    params: Vec<f64>,
    // Committed state (last accepted time point).
    committed_vars: Vec<f64>,
    committed_dt_args: Vec<f64>,
    committed_idt_args: Vec<f64>,
    committed_idt_integral: Vec<f64>,
    history: Vec<VecDeque<(f64, f64)>>,
    max_td_seen: f64,
    scratch: Scratch,
}

/// Reusable buffers for evaluation passes: the device Jacobian requires
/// `pins + 1` evaluations per Newton iteration, so per-pass allocation would
/// dominate the interpreter cost.
#[derive(Debug, Clone, Default)]
struct Scratch {
    vars: Vec<f64>,
    assigned: Vec<bool>,
    imposed: Vec<f64>,
    dt_args: Vec<f64>,
    dt_seen: Vec<bool>,
    idt_args: Vec<f64>,
    idt_seen: Vec<bool>,
    // Dual-number buffers for the analytic-Jacobian pass.
    vars_dual: Vec<Dual>,
    imposed_dual: Vec<Dual>,
}

impl Scratch {
    fn reset(&mut self, n_vars: usize, n_pins: usize, n_dt: usize, n_idt: usize) {
        self.vars.clear();
        self.vars.resize(n_vars, 0.0);
        self.assigned.clear();
        self.assigned.resize(n_vars, false);
        self.imposed.clear();
        self.imposed.resize(n_pins, 0.0);
        self.dt_args.clear();
        self.dt_args.resize(n_dt, 0.0);
        self.dt_seen.clear();
        self.dt_seen.resize(n_dt, false);
        self.idt_args.clear();
        self.idt_args.resize(n_idt, 0.0);
        self.idt_seen.clear();
        self.idt_seen.resize(n_idt, false);
        self.vars_dual.clear();
        self.vars_dual.resize(n_vars, Dual::constant(0.0));
        self.imposed_dual.clear();
        self.imposed_dual.resize(n_pins, Dual::constant(0.0));
    }
}

/// One evaluation pass over the model body.
struct Pass<'a> {
    machine: &'a FasMachine,
    ctx: EvalCtx,
    pin_v: &'a [f64],
    scratch: &'a mut Scratch,
    max_td: f64,
}

impl FasMachine {
    pub(crate) fn new(model: CompiledModel, params: Vec<f64>) -> Self {
        let n_vars = model.var_names.len();
        let n_dt = model.n_dt;
        let n_idt = model.n_idt;
        let n_delayt = model.n_delayt;
        FasMachine {
            model,
            params,
            committed_vars: vec![0.0; n_vars],
            committed_dt_args: vec![0.0; n_dt],
            committed_idt_args: vec![0.0; n_idt],
            committed_idt_integral: vec![0.0; n_idt],
            history: vec![VecDeque::new(); n_delayt],
            max_td_seen: 0.0,
            scratch: Scratch::default(),
        }
    }

    /// The compiled model this machine runs.
    pub fn model(&self) -> &CompiledModel {
        &self.model
    }

    /// Current value of a named parameter.
    pub fn param(&self, name: &str) -> Option<f64> {
        self.model
            .params
            .iter()
            .position(|(n, _)| n == name)
            .map(|i| self.params[i])
    }

    /// Committed value of a named variable (test/diagnostic hook).
    pub fn committed_var(&self, name: &str) -> Option<f64> {
        self.model
            .var_names
            .iter()
            .position(|n| n == name)
            .map(|i| self.committed_vars[i])
    }

    /// Runs one evaluation pass into the reusable scratch buffers, which
    /// are left holding the pass results. Returns the largest `delayt` time
    /// seen.
    fn run_pass_mut(&mut self, ctx: EvalCtx, pin_v: &[f64]) -> f64 {
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.reset(
            self.model.var_names.len(),
            self.model.pins.len(),
            self.model.n_dt,
            self.model.n_idt,
        );
        let max_td = {
            let mut pass = Pass {
                machine: self,
                ctx,
                pin_v,
                scratch: &mut scratch,
                max_td: 0.0,
            };
            pass.exec_block(&self.model.body);
            pass.max_td
        };
        self.scratch = scratch;
        max_td
    }

    /// Runs one dual-number pass (value + exact pin Jacobian in a single
    /// interpreter walk). Results land in `scratch.imposed_dual`.
    fn run_dual_pass(&mut self, ctx: EvalCtx, pin_v: &[f64]) {
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.reset(
            self.model.var_names.len(),
            self.model.pins.len(),
            self.model.n_dt,
            self.model.n_idt,
        );
        {
            let mut pass = Pass {
                machine: self,
                ctx,
                pin_v,
                scratch: &mut scratch,
                max_td: 0.0,
            };
            pass.exec_block_dual(&self.model.body);
        }
        self.scratch = scratch;
    }
}

impl Pass<'_> {
    fn exec_block(&mut self, stmts: &[CStmt]) {
        for stmt in stmts {
            match stmt {
                CStmt::Set(var, expr) => {
                    let v = self.eval(expr);
                    self.scratch.vars[*var] = v;
                    self.scratch.assigned[*var] = true;
                }
                CStmt::Impose(pin, expr) => {
                    let v = self.eval(expr);
                    self.scratch.imposed[*pin] += v;
                }
                CStmt::If(cond, then_b, else_b) => {
                    let taken = match cond {
                        CCond::ModeIs(dc) => *dc == self.ctx.mode_dc,
                        CCond::Cmp(op, a, b) => {
                            let av = self.eval(a);
                            let bv = self.eval(b);
                            op.apply(av, bv)
                        }
                    };
                    if taken {
                        self.exec_block(then_b);
                    } else {
                        self.exec_block(else_b);
                    }
                }
            }
        }
    }

    fn exec_block_dual(&mut self, stmts: &[CStmt]) {
        for stmt in stmts {
            match stmt {
                CStmt::Set(var, expr) => {
                    let v = self.eval_dual(expr);
                    self.scratch.vars_dual[*var] = v;
                    self.scratch.vars[*var] = v.v;
                    self.scratch.assigned[*var] = true;
                }
                CStmt::Impose(pin, expr) => {
                    let v = self.eval_dual(expr);
                    let cur = self.scratch.imposed_dual[*pin];
                    self.scratch.imposed_dual[*pin] = cur + v;
                    self.scratch.imposed[*pin] += v.v;
                }
                CStmt::If(cond, then_b, else_b) => {
                    let taken = match cond {
                        CCond::ModeIs(dc) => *dc == self.ctx.mode_dc,
                        CCond::Cmp(op, a, b) => {
                            let av = self.eval_dual(a).v;
                            let bv = self.eval_dual(b).v;
                            op.apply(av, bv)
                        }
                    };
                    if taken {
                        self.exec_block_dual(then_b);
                    } else {
                        self.exec_block_dual(else_b);
                    }
                }
            }
        }
    }

    fn eval_dual(&mut self, expr: &CExpr) -> Dual {
        use crate::compile::{Func1, Func2};
        match expr {
            CExpr::Num(v) => Dual::constant(*v),
            CExpr::Var(i) => self.scratch.vars_dual[*i],
            CExpr::Param(i) => Dual::constant(self.machine.params[*i]),
            CExpr::PinValue(i) => Dual::variable(self.pin_v[*i], *i),
            CExpr::Time => Dual::constant(self.ctx.time),
            CExpr::Temp => Dual::constant(self.ctx.temperature),
            CExpr::TimeStep => Dual::constant(self.dt_effective()),
            CExpr::Neg(e) => -self.eval_dual(e),
            CExpr::Bin(op, a, b) => {
                let av = self.eval_dual(a);
                let bv = self.eval_dual(b);
                match op {
                    crate::ast::BinOp::Add => av + bv,
                    crate::ast::BinOp::Sub => av - bv,
                    crate::ast::BinOp::Mul => av * bv,
                    crate::ast::BinOp::Div => av / bv,
                }
            }
            CExpr::Call1(f, a) => {
                let av = self.eval_dual(a);
                let x = av.v;
                let (value, slope) = match f {
                    Func1::Sin => (x.sin(), x.cos()),
                    Func1::Cos => (x.cos(), -x.sin()),
                    Func1::Exp => {
                        let e = x.exp();
                        (e, e)
                    }
                    Func1::Ln => (x.ln(), 1.0 / x),
                    Func1::Abs => (x.abs(), if x >= 0.0 { 1.0 } else { -1.0 }),
                    Func1::Sqrt => {
                        let r = x.sqrt();
                        (r, if r > 0.0 { 0.5 / r } else { 0.0 })
                    }
                    Func1::Tanh => {
                        let t = x.tanh();
                        (t, 1.0 - t * t)
                    }
                    Func1::Atan => (x.atan(), 1.0 / (1.0 + x * x)),
                };
                av.chain(value, slope)
            }
            CExpr::Call2(f, a, b) => {
                let av = self.eval_dual(a);
                let bv = self.eval_dual(b);
                match f {
                    Func2::Min => {
                        if av.v <= bv.v {
                            av
                        } else {
                            bv
                        }
                    }
                    Func2::Max => {
                        if av.v >= bv.v {
                            av
                        } else {
                            bv
                        }
                    }
                    Func2::Pow => {
                        let value = av.v.powf(bv.v);
                        // d(a^b) = a^b (b' ln a + b a'/a); the ln-term only
                        // exists for positive bases.
                        let da = if av.v != 0.0 {
                            value * bv.v / av.v
                        } else {
                            0.0
                        };
                        let db = if av.v > 0.0 { value * av.v.ln() } else { 0.0 };
                        let mut d = [0.0; MAX_TANGENTS];
                        #[allow(clippy::needless_range_loop)]
                        for i in 0..MAX_TANGENTS {
                            d[i] = da * av.d[i] + db * bv.d[i];
                        }
                        Dual { v: value, d }
                    }
                }
            }
            CExpr::Limit(x, lo, hi) => {
                let xv = self.eval_dual(x);
                let lov = self.eval_dual(lo);
                let hiv = self.eval_dual(hi);
                if xv.v < lov.v {
                    lov
                } else if xv.v > hiv.v {
                    hiv
                } else {
                    xv
                }
            }
            CExpr::Dt { inst, arg } => {
                let av = self.eval_dual(arg);
                self.scratch.dt_args[*inst] = av.v;
                self.scratch.dt_seen[*inst] = true;
                if self.ctx.mode_dc {
                    Dual::constant(0.0)
                } else {
                    let dt = self.dt_effective();
                    let value = (av.v - self.machine.committed_dt_args[*inst]) / dt;
                    let mut out = av.scale_tangent(1.0 / dt);
                    out.v = value;
                    out
                }
            }
            CExpr::Delay { var } => Dual::constant(self.machine.committed_vars[*var]),
            CExpr::DelayT { inst, var, td } => {
                let tdv = self.eval_dual(td).v.max(0.0);
                self.max_td = self.max_td.max(tdv);
                if self.ctx.mode_dc {
                    return Dual::constant(self.machine.committed_vars[*var]);
                }
                let target = self.ctx.time - tdv;
                let hist = &self.machine.history[*inst];
                Dual::constant(
                    sample_history(hist, target).unwrap_or(self.machine.committed_vars[*var]),
                )
            }
            CExpr::Idt { inst, arg } => {
                let av = self.eval_dual(arg);
                self.scratch.idt_args[*inst] = av.v;
                self.scratch.idt_seen[*inst] = true;
                if self.ctx.mode_dc {
                    Dual::constant(0.0)
                } else {
                    let half_dt = 0.5 * self.ctx.dt;
                    let value = self.machine.committed_idt_integral[*inst]
                        + half_dt * (av.v + self.machine.committed_idt_args[*inst]);
                    let mut out = av.scale_tangent(half_dt);
                    out.v = value;
                    out
                }
            }
        }
    }

    fn dt_effective(&self) -> f64 {
        if self.ctx.mode_dc || self.ctx.dt <= 0.0 {
            DC_PSEUDO_DT
        } else {
            self.ctx.dt
        }
    }

    fn eval(&mut self, expr: &CExpr) -> f64 {
        match expr {
            CExpr::Num(v) => *v,
            CExpr::Var(i) => self.scratch.vars[*i],
            CExpr::Param(i) => self.machine.params[*i],
            CExpr::PinValue(i) => self.pin_v[*i],
            CExpr::Time => self.ctx.time,
            CExpr::Temp => self.ctx.temperature,
            CExpr::TimeStep => self.dt_effective(),
            CExpr::Neg(e) => -self.eval(e),
            CExpr::Bin(op, a, b) => {
                let av = self.eval(a);
                let bv = self.eval(b);
                match op {
                    crate::ast::BinOp::Add => av + bv,
                    crate::ast::BinOp::Sub => av - bv,
                    crate::ast::BinOp::Mul => av * bv,
                    crate::ast::BinOp::Div => av / bv,
                }
            }
            CExpr::Call1(f, a) => {
                let av = self.eval(a);
                f.apply(av)
            }
            CExpr::Call2(f, a, b) => {
                let av = self.eval(a);
                let bv = self.eval(b);
                f.apply(av, bv)
            }
            CExpr::Limit(x, lo, hi) => {
                let xv = self.eval(x);
                let lov = self.eval(lo);
                let hiv = self.eval(hi);
                xv.max(lov).min(hiv)
            }
            CExpr::Dt { inst, arg } => {
                let v = self.eval(arg);
                self.scratch.dt_args[*inst] = v;
                self.scratch.dt_seen[*inst] = true;
                if self.ctx.mode_dc {
                    0.0
                } else {
                    (v - self.machine.committed_dt_args[*inst]) / self.dt_effective()
                }
            }
            CExpr::Delay { var } => self.machine.committed_vars[*var],
            CExpr::DelayT { inst, var, td } => {
                let tdv = self.eval(td).max(0.0);
                self.max_td = self.max_td.max(tdv);
                if self.ctx.mode_dc {
                    return self.machine.committed_vars[*var];
                }
                let target = self.ctx.time - tdv;
                let hist = &self.machine.history[*inst];
                sample_history(hist, target).unwrap_or(self.machine.committed_vars[*var])
            }
            CExpr::Idt { inst, arg } => {
                let v = self.eval(arg);
                self.scratch.idt_args[*inst] = v;
                self.scratch.idt_seen[*inst] = true;
                if self.ctx.mode_dc {
                    0.0
                } else {
                    // Committed integral extended by the current half step
                    // (trapezoidal).
                    self.machine.committed_idt_integral[*inst]
                        + 0.5 * self.ctx.dt * (v + self.machine.committed_idt_args[*inst])
                }
            }
        }
    }
}

/// Linear interpolation into a delayed-variable history. Shared with the
/// bytecode VM so both backends resolve `state.delayt` identically.
pub fn sample_history(hist: &VecDeque<(f64, f64)>, t: f64) -> Option<f64> {
    if hist.is_empty() {
        return None;
    }
    if t <= hist.front().expect("non-empty").0 {
        return Some(hist.front().expect("non-empty").1);
    }
    if t >= hist.back().expect("non-empty").0 {
        return Some(hist.back().expect("non-empty").1);
    }
    let mut prev = *hist.front().expect("non-empty");
    for &(ht, hv) in hist.iter().skip(1) {
        if ht >= t {
            let frac = (t - prev.0) / (ht - prev.0);
            return Some(prev.1 + frac * (hv - prev.1));
        }
        prev = (ht, hv);
    }
    Some(prev.1)
}

impl BehavioralModel for FasMachine {
    fn pin_count(&self) -> usize {
        self.model.pins.len()
    }

    fn eval(&mut self, ctx: &EvalCtx, pin_voltages: &[f64], currents: &mut [f64]) {
        self.run_pass_mut(*ctx, pin_voltages);
        currents.copy_from_slice(&self.scratch.imposed);
    }

    fn eval_with_jacobian(
        &mut self,
        ctx: &EvalCtx,
        pin_voltages: &[f64],
        currents: &mut [f64],
        jacobian: &mut [f64],
    ) -> bool {
        let n = self.model.pins.len();
        if n > MAX_TANGENTS {
            return false;
        }
        self.run_dual_pass(*ctx, pin_voltages);
        for k in 0..n {
            let imposed = self.scratch.imposed_dual[k];
            currents[k] = imposed.v;
            jacobian[k * n..k * n + n].copy_from_slice(&imposed.d[..n]);
        }
        true
    }

    fn accept(&mut self, ctx: &EvalCtx, pin_voltages: &[f64]) {
        if ctx.mode_dc {
            // Pass 1 — DC semantics: commit the variable values.
            self.run_pass_mut(*ctx, pin_voltages);
            for i in 0..self.committed_vars.len() {
                if self.scratch.assigned[i] {
                    self.committed_vars[i] = self.scratch.vars[i];
                }
            }
            // Pass 2 — shadow transient with the DC pseudo-step: walks the
            // `else` branches of the mode guards so every state instance
            // records its argument, seeding derivatives/integrals/delays
            // with operating-point values.
            let shadow_ctx = EvalCtx {
                mode_dc: false,
                time: 0.0,
                dt: DC_PSEUDO_DT,
                temperature: ctx.temperature,
            };
            self.run_pass_mut(shadow_ctx, pin_voltages);
            for i in 0..self.committed_dt_args.len() {
                if self.scratch.dt_seen[i] {
                    self.committed_dt_args[i] = self.scratch.dt_args[i];
                }
            }
            for i in 0..self.committed_idt_args.len() {
                if self.scratch.idt_seen[i] {
                    self.committed_idt_args[i] = self.scratch.idt_args[i];
                    self.committed_idt_integral[i] = 0.0;
                }
            }
            // Seed delayed-variable histories at t = 0.
            let committed = self.committed_vars.clone();
            for (inst, hist) in self.history.iter_mut().enumerate() {
                hist.clear();
                // Which variable does this instance delay? Recover it by
                // scanning the compiled body once.
                if let Some(var) = delayt_var(&self.model.body, inst) {
                    hist.push_back((0.0, committed[var]));
                }
            }
        } else {
            let max_td = self.run_pass_mut(*ctx, pin_voltages);
            for i in 0..self.committed_vars.len() {
                if self.scratch.assigned[i] {
                    self.committed_vars[i] = self.scratch.vars[i];
                }
            }
            for i in 0..self.committed_dt_args.len() {
                if self.scratch.dt_seen[i] {
                    self.committed_dt_args[i] = self.scratch.dt_args[i];
                }
            }
            for i in 0..self.committed_idt_args.len() {
                if self.scratch.idt_seen[i] {
                    let v = self.scratch.idt_args[i];
                    self.committed_idt_integral[i] +=
                        0.5 * ctx.dt * (v + self.committed_idt_args[i]);
                    self.committed_idt_args[i] = v;
                }
            }
            self.max_td_seen = self.max_td_seen.max(max_td);
            // Append to delayed histories and prune.
            let committed = self.committed_vars.clone();
            let keep_after = ctx.time - 2.0 * self.max_td_seen - ctx.dt;
            for (inst, hist) in self.history.iter_mut().enumerate() {
                if let Some(var) = delayt_var(&self.model.body, inst) {
                    hist.push_back((ctx.time, committed[var]));
                    while hist.len() > 2 && hist.front().map(|h| h.0) < Some(keep_after) {
                        hist.pop_front();
                    }
                }
            }
        }
    }
}

/// Finds the variable delayed by `state.delayt` instance `inst`. Shared
/// with the bytecode VM, which keys history commits off the same mapping.
pub fn delayt_var(body: &[CStmt], inst: usize) -> Option<usize> {
    fn in_expr(e: &CExpr, inst: usize) -> Option<usize> {
        match e {
            CExpr::DelayT {
                inst: i, var, td, ..
            } => {
                if *i == inst {
                    Some(*var)
                } else {
                    in_expr(td, inst)
                }
            }
            CExpr::Neg(a)
            | CExpr::Call1(_, a)
            | CExpr::Dt { arg: a, .. }
            | CExpr::Idt { arg: a, .. } => in_expr(a, inst),
            CExpr::Bin(_, a, b) | CExpr::Call2(_, a, b) => {
                in_expr(a, inst).or_else(|| in_expr(b, inst))
            }
            CExpr::Limit(a, b, c) => in_expr(a, inst)
                .or_else(|| in_expr(b, inst))
                .or_else(|| in_expr(c, inst)),
            _ => None,
        }
    }
    fn in_stmts(stmts: &[CStmt], inst: usize) -> Option<usize> {
        for s in stmts {
            let found = match s {
                CStmt::Set(_, e) | CStmt::Impose(_, e) => in_expr(e, inst),
                CStmt::If(cond, a, b) => {
                    let c = match cond {
                        CCond::Cmp(_, x, y) => in_expr(x, inst).or_else(|| in_expr(y, inst)),
                        CCond::ModeIs(_) => None,
                    };
                    c.or_else(|| in_stmts(a, inst))
                        .or_else(|| in_stmts(b, inst))
                }
            };
            if found.is_some() {
                return found;
            }
        }
        None
    }
    in_stmts(body, inst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use std::collections::BTreeMap;

    fn machine(src: &str) -> FasMachine {
        compile(src).unwrap().instantiate(&BTreeMap::new()).unwrap()
    }

    fn dc_ctx() -> EvalCtx {
        EvalCtx {
            mode_dc: true,
            time: 0.0,
            dt: 0.0,
            temperature: 300.15,
        }
    }

    fn tran_ctx(time: f64, dt: f64) -> EvalCtx {
        EvalCtx {
            mode_dc: false,
            time,
            dt,
            temperature: 300.15,
        }
    }

    #[test]
    fn resistor_model_current() {
        let mut m = machine(
            "model r pin (a) param (g=1e-3)\nanalog\nmake v = volt.value(a)\nmake curr.on(a) = g * v\nendanalog\nendmodel\n",
        );
        let mut i = [0.0];
        m.eval(&dc_ctx(), &[2.0], &mut i);
        assert!((i[0] - 2e-3).abs() < 1e-15);
        assert_eq!(m.param("g"), Some(1e-3));
        assert_eq!(m.param("zz"), None);
    }

    #[test]
    fn paper_input_stage_semantics() {
        let src = "\
model input_stage pin (in) param (gin=1e-6, cin=1e-9)
analog
make v2 = volt.value(in)
if (mode=dc) then
make yd4 = 0
else
make yd4 = state.dt(v2)
endif
make yout5 = cin * yd4
make yout6 = gin * v2
make yout7 = yout5 + yout6
make curr.on(in) = yout7
endanalog
endmodel
";
        let mut m = machine(src);
        // DC: only the conductive part.
        let mut i = [0.0];
        m.eval(&dc_ctx(), &[1.0], &mut i);
        assert!((i[0] - 1e-6).abs() < 1e-18);
        // Accept the OP at 1 V; the shadow pass seeds v_prev = 1.0.
        m.accept(&dc_ctx(), &[1.0]);
        assert_eq!(m.committed_var("v2"), Some(1.0));
        // Transient step to 2 V over 1 µs: derivative = 1e6 V/s,
        // capacitive current = 1e-9 · 1e6 = 1 mA plus 2 µA conductive.
        let ctx = tran_ctx(1e-6, 1e-6);
        m.eval(&ctx, &[2.0], &mut i);
        assert!((i[0] - (1e-3 + 2e-6)).abs() < 1e-9, "i = {}", i[0]);
    }

    #[test]
    fn derivative_is_zero_in_dc_even_after_steps() {
        let mut m = machine(
            "model d pin (a)\nanalog\nif (mode=dc) then\nmake y = 0\nelse\nmake y = state.dt(volt.value(a))\nendif\nmake curr.on(a) = y\nendanalog\nendmodel\n",
        );
        let mut i = [0.0];
        m.eval(&dc_ctx(), &[5.0], &mut i);
        assert_eq!(i[0], 0.0);
    }

    #[test]
    fn state_delay_reads_committed() {
        let mut m = machine(
            "model d pin (a)\nanalog\nmake y = volt.value(a)\nmake z = state.delay(y)\nmake curr.on(a) = z\nendanalog\nendmodel\n",
        );
        let mut i = [0.0];
        // Before any accept, delay reads 0.
        m.eval(&tran_ctx(1e-6, 1e-6), &[3.0], &mut i);
        assert_eq!(i[0], 0.0);
        m.accept(&tran_ctx(1e-6, 1e-6), &[3.0]);
        // Now the committed value of y is 3.
        m.eval(&tran_ctx(2e-6, 1e-6), &[7.0], &mut i);
        assert_eq!(i[0], 3.0);
    }

    #[test]
    fn slew_rate_pattern_dc_passthrough() {
        // The generated slew-rate code: at DC, y must equal u thanks to the
        // 1e9 pseudo-step.
        let src = "\
model slew pin (a) param (srise=1e6, sfall=1e6)
analog
make u = volt.value(a)
make ylast = state.delay(y)
make slope = (u - ylast) / timestep
make slim = limit(slope, (-sfall), srise)
make y = ylast + slim * timestep
make curr.on(a) = 0
endanalog
endmodel
";
        let mut m = machine(src);
        m.accept(&dc_ctx(), &[2.5]);
        assert!((m.committed_var("y").unwrap() - 2.5).abs() < 1e-12);
        // A big step is slope-limited: from 2.5 V target 10 V in 1 µs with
        // 1e6 V/s → only 1 V of movement.
        m.accept(&tran_ctx(1e-6, 1e-6), &[10.0]);
        assert!((m.committed_var("y").unwrap() - 3.5).abs() < 1e-9);
    }

    #[test]
    fn integral_accumulates() {
        let mut m = machine(
            "model i pin (a)\nanalog\nmake y = state.idt(volt.value(a))\nmake curr.on(a) = y\nendanalog\nendmodel\n",
        );
        m.accept(&dc_ctx(), &[1.0]);
        // Integrate a constant 1 V for 3 steps of 1 ms: integral = 3e-3.
        m.accept(&tran_ctx(1e-3, 1e-3), &[1.0]);
        m.accept(&tran_ctx(2e-3, 1e-3), &[1.0]);
        m.accept(&tran_ctx(3e-3, 1e-3), &[1.0]);
        let mut i = [0.0];
        m.eval(&tran_ctx(4e-3, 1e-3), &[1.0], &mut i);
        // committed integral (3e-3) + half-step extension (1e-3).
        assert!((i[0] - 4e-3).abs() < 1e-12, "i = {}", i[0]);
    }

    #[test]
    fn delayt_interpolates_history() {
        let mut m = machine(
            "model d pin (a)\nanalog\nmake y = volt.value(a)\nmake z = state.delayt(y, 2e-3)\nmake curr.on(a) = z\nendanalog\nendmodel\n",
        );
        m.accept(&dc_ctx(), &[0.0]);
        // Ramp: v = t/1e-3 volts at 1 ms steps.
        for k in 1..=5 {
            let t = k as f64 * 1e-3;
            m.accept(&tran_ctx(t, 1e-3), &[k as f64]);
        }
        let mut i = [0.0];
        // At t = 6 ms (eval), delayed 2 ms → value at t = 4 ms = 4.0.
        m.eval(&tran_ctx(6e-3, 1e-3), &[6.0], &mut i);
        assert!((i[0] - 4.0).abs() < 1e-9, "i = {}", i[0]);
    }

    #[test]
    fn conditional_on_signal() {
        let mut m = machine(
            "model c pin (a)\nanalog\nmake v = volt.value(a)\nif (v > 1) then\nmake y = 10\nelse\nmake y = -10\nendif\nmake curr.on(a) = y\nendanalog\nendmodel\n",
        );
        let mut i = [0.0];
        m.eval(&dc_ctx(), &[2.0], &mut i);
        assert_eq!(i[0], 10.0);
        m.eval(&dc_ctx(), &[0.5], &mut i);
        assert_eq!(i[0], -10.0);
    }

    #[test]
    fn multi_pin_imposition() {
        let mut m = machine(
            "model two pin (a, b)\nanalog\nmake va = volt.value(a)\nmake curr.on(a) = va\nmake curr.on(b) = -va\nendanalog\nendmodel\n",
        );
        let mut i = [0.0, 0.0];
        m.eval(&dc_ctx(), &[1.5, 0.0], &mut i);
        assert_eq!(i[0], 1.5);
        assert_eq!(i[1], -1.5);
    }

    #[test]
    fn imposition_accumulates() {
        let mut m = machine(
            "model acc pin (a)\nanalog\nmake curr.on(a) = 1\nmake curr.on(a) = 2\nendanalog\nendmodel\n",
        );
        let mut i = [0.0];
        m.eval(&dc_ctx(), &[0.0], &mut i);
        assert_eq!(i[0], 3.0);
    }

    #[test]
    fn eval_is_pure() {
        let mut m = machine(
            "model p pin (a)\nanalog\nmake y = state.dt(volt.value(a))\nmake curr.on(a) = y\nendanalog\nendmodel\n",
        );
        m.accept(&dc_ctx(), &[1.0]);
        let ctx = tran_ctx(1e-6, 1e-6);
        let mut i1 = [0.0];
        let mut i2 = [0.0];
        m.eval(&ctx, &[2.0], &mut i1);
        // Repeated evaluation at the same point gives the same answer (no
        // hidden state advancement).
        m.eval(&ctx, &[2.0], &mut i2);
        assert_eq!(i1, i2);
    }
}

#[cfg(test)]
mod jacobian_tests {
    use super::*;
    use crate::compile::compile;
    use std::collections::BTreeMap;

    fn tran_ctx(time: f64, dt: f64) -> EvalCtx {
        EvalCtx {
            mode_dc: false,
            time,
            dt,
            temperature: 300.15,
        }
    }

    /// A model exercising every differentiable construct.
    const KITCHEN_SINK: &str = "\
model sink pin (a, b, c) param (g=1e-3, k=0.5)
analog
make va = volt.value(a)
make vb = volt.value(b)
make vc = volt.value(c)
make p1 = g * (va - vb) + k * va * vb
make p2 = limit(p1, -1e-3, 1e-3)
make p3 = tanh(va) + sin(vb) * exp(-vc) + sqrt(abs(va) + 1.0)
make p4 = max(va, vb) + min(vb, vc) + pow(abs(vc) + 1.0, 2.0)
make p5 = state.dt(va) * 1e-9 + state.idt(vb) * 1e-3
make p6 = state.delay(p4)
make curr.on(a) = p2 + 1e-6 * p3
make curr.on(b) = 1e-6 * p4 - p2
make curr.on(c) = 1e-6 * (p5 + p6)
endanalog
endmodel
";

    /// AD and finite differences must agree everywhere (to FD accuracy).
    #[test]
    fn analytic_jacobian_matches_finite_differences() {
        let model = compile(KITCHEN_SINK).unwrap();
        let mut m = model.instantiate(&BTreeMap::new()).unwrap();
        // Give the state some history so dt/idt/delay are non-trivial.
        m.accept(&tran_ctx(1e-6, 1e-6), &[0.3, -0.2, 0.1]);
        let ctx = tran_ctx(2e-6, 1e-6);
        // Test points avoid the non-differentiable kinks (abs at 0,
        // min/max ties, limiter boundaries), where one-sided AD
        // subgradients and central finite differences legitimately differ.
        for v in [
            [0.5, -0.4, 0.2],
            [-1.0, 1.0, 0.3],
            [2.0, 1.5, 2.5],
            [0.1, 0.2, 0.35],
            [-0.1, 0.7, -3.0],
        ] {
            let mut i_ad = [0.0; 3];
            let mut jac = [0.0; 9];
            assert!(m.eval_with_jacobian(&ctx, &v, &mut i_ad, &mut jac));
            // Values match the scalar pass exactly.
            let mut i_scalar = [0.0; 3];
            m.eval(&ctx, &v, &mut i_scalar);
            for k in 0..3 {
                assert!(
                    (i_ad[k] - i_scalar[k]).abs() <= 1e-15 * i_scalar[k].abs().max(1.0),
                    "value mismatch at pin {k}: {} vs {}",
                    i_ad[k],
                    i_scalar[k]
                );
            }
            // Jacobian matches central finite differences.
            for j in 0..3 {
                let h = 1e-6;
                let mut vp = v;
                vp[j] += h;
                let mut ip = [0.0; 3];
                m.eval(&ctx, &vp, &mut ip);
                let mut vm = v;
                vm[j] -= h;
                let mut im = [0.0; 3];
                m.eval(&ctx, &vm, &mut im);
                for k in 0..3 {
                    let fd = (ip[k] - im[k]) / (2.0 * h);
                    let ad = jac[k * 3 + j];
                    let tol = 1e-5 * fd.abs().max(1e-9);
                    assert!(
                        (ad - fd).abs() <= tol,
                        "jacobian mismatch at v={v:?} [{k}][{j}]: ad={ad:.6e}, fd={fd:.6e}"
                    );
                }
            }
        }
    }

    /// The full comparator model supports the analytic path (7 pins ≤ 8).
    #[test]
    fn comparator_model_uses_analytic_jacobian() {
        // Generated FAS of the paper input stage (1 pin) as a cheap proxy,
        // plus a synthetic 9-pin model that must fall back.
        let model = compile(
            "model small pin (a)\nanalog\nmake v = volt.value(a)\nmake curr.on(a) = 1e-3 * v\nendanalog\nendmodel\n",
        )
        .unwrap();
        let mut m = model.instantiate(&BTreeMap::new()).unwrap();
        let mut i = [0.0];
        let mut jac = [0.0];
        let ctx = tran_ctx(0.0, 1e-6);
        assert!(m.eval_with_jacobian(&ctx, &[2.0], &mut i, &mut jac));
        assert!((i[0] - 2e-3).abs() < 1e-15);
        assert!((jac[0] - 1e-3).abs() < 1e-12);

        let many = compile(
            "model wide pin (p0,p1,p2,p3,p4,p5,p6,p7,p8)\nanalog\nmake v = volt.value(p0)\nmake curr.on(p0) = v\nendanalog\nendmodel\n",
        )
        .unwrap();
        let mut w = many.instantiate(&BTreeMap::new()).unwrap();
        let mut i9 = [0.0; 9];
        let mut jac9 = [0.0; 81];
        assert!(!w.eval_with_jacobian(&ctx, &[0.0; 9], &mut i9, &mut jac9));
    }
}
