//! Seeded random FAS model generator for cross-backend testing.
//!
//! Two generators share one vocabulary:
//!
//! - [`straight_line_source`] — small straight-line models used by the
//!   front-end fuzz tests (parse → print → parse roundtrips, total
//!   compilation).
//! - [`rich_model_source`] — models exercising the *full* compiled-IR
//!   vocabulary (every intrinsic, `limit`, all four `state.*` operators,
//!   mode guards and relational branches, multi-pin imposes). These drive
//!   the interpreter-vs-VM differential suite, so breadth here directly
//!   bounds the bytecode backend's test coverage.
//!
//! Both are deterministic given the caller's [`Rng`] — a failing case
//! reproduces from the seed alone.

use gabm_numeric::rng::Rng;

/// Pin names used by [`rich_model_source`], in declaration order.
pub const RICH_PINS: [&str; 3] = ["a", "b", "c"];

/// Parameter declarations used by [`rich_model_source`].
pub const RICH_PARAMS: [(&str, &str); 3] = [("g", "1e-3"), ("tau", "2.0"), ("k", "0.5")];

/// Expression templates for straight-line models (the historical fuzz
/// pool; referenced variables are `v0` and pin `a`).
pub const STRAIGHT_LINE_EXPRS: [&str; 9] = [
    "volt.value(a)",
    "g * v0",
    "v0 + 1.0",
    "limit(v0, -1.0, 1.0)",
    "sin(time)",
    "state.dt(v0)",
    "state.delay(v0)",
    "max(v0, 0.0)",
    "-v0 / 2.0",
];

/// A small straight-line model: `v0` reads pin `a`, a random chain of
/// derived variables follows, and `v0` is imposed back on `a`.
pub fn straight_line_source(rng: &mut Rng) -> String {
    let n = 1 + rng.below(7);
    let mut body = String::from("make v0 = volt.value(a)\n");
    for k in 0..n {
        body.push_str(&format!(
            "make v{} = {}\n",
            k + 1,
            STRAIGHT_LINE_EXPRS[rng.below(STRAIGHT_LINE_EXPRS.len())]
        ));
    }
    body.push_str("make curr.on(a) = v0\n");
    format!("model fuzz pin (a) param (g=1e-3)\nanalog\n{body}endanalog\nendmodel\n")
}

/// Literal pool: plain decimals the lexer accepts verbatim, spanning
/// signs and magnitudes without drifting into overflow-prone territory.
const NUMS: [&str; 8] = ["0.5", "2.0", "1.5", "0.25", "3.0", "0.1", "1.0e-3", "4.0"];

const FUNC1: [&str; 8] = ["sin", "cos", "exp", "ln", "abs", "sqrt", "tanh", "atan"];
const FUNC2: [&str; 3] = ["min", "max", "pow"];
const RELOPS: [&str; 6] = ["=", "!=", "<", "<=", ">", ">="];
const BINOPS: [&str; 4] = ["+", "-", "*", "/"];

/// Context threaded through the recursive expression generator.
struct GenCtx {
    n_pins: usize,
    /// Variables already defined (usable as operands).
    n_vars: usize,
    /// `state.*` operators allowed here (the generator keeps them out of
    /// deeply nested positions only to bound state-instance counts, not
    /// for semantic reasons — the backends must agree wherever they are).
    allow_state: bool,
}

fn gen_expr(rng: &mut Rng, depth: usize, cx: &GenCtx) -> String {
    // Leaves dominate as depth grows.
    if depth == 0 || rng.below(100) < 35 {
        return match rng.below(6) {
            0 => NUMS[rng.below(NUMS.len())].to_string(),
            1 if cx.n_vars > 0 => format!("v{}", rng.below(cx.n_vars)),
            2 => {
                let (name, _) = RICH_PARAMS[rng.below(RICH_PARAMS.len())];
                name.to_string()
            }
            3 => format!("volt.value({})", RICH_PINS[rng.below(cx.n_pins)]),
            4 => ["time", "temp", "timestep"][rng.below(3)].to_string(),
            _ => format!("volt.value({})", RICH_PINS[rng.below(cx.n_pins)]),
        };
    }
    let d = depth - 1;
    match rng.below(12) {
        0 => format!("-{}", gen_expr(rng, d, cx)),
        1..=3 => format!(
            "({} {} {})",
            gen_expr(rng, d, cx),
            BINOPS[rng.below(BINOPS.len())],
            gen_expr(rng, d, cx)
        ),
        4 | 5 => format!(
            "{}({})",
            FUNC1[rng.below(FUNC1.len())],
            gen_expr(rng, d, cx)
        ),
        6 => format!(
            "{}({}, {})",
            FUNC2[rng.below(FUNC2.len())],
            gen_expr(rng, d, cx),
            gen_expr(rng, d, cx)
        ),
        7 => format!(
            "limit({}, {}, {})",
            gen_expr(rng, d, cx),
            // Ordered bounds most of the time; occasionally degenerate
            // (lo > hi) to pin the interpreter's clamp-order semantics.
            if rng.below(8) == 0 { "2.0" } else { "-1.0" },
            "1.0"
        ),
        8 if cx.allow_state => format!("state.dt({})", gen_expr(rng, d, cx)),
        9 if cx.allow_state && cx.n_vars > 0 => {
            format!("state.delay(v{})", rng.below(cx.n_vars))
        }
        10 if cx.allow_state && cx.n_vars > 0 => {
            // td pool covers a plain literal, a parameter, a sub-step
            // delay and a negative value (clamped to 0 by both backends).
            let td = ["0.5", "tau", "1.0e-3", "-1.0"][rng.below(4)];
            format!("state.delayt(v{}, {td})", rng.below(cx.n_vars))
        }
        11 if cx.allow_state => format!("state.idt({})", gen_expr(rng, d, cx)),
        _ => format!(
            "({} {} {})",
            gen_expr(rng, d, cx),
            BINOPS[rng.below(BINOPS.len())],
            gen_expr(rng, d, cx)
        ),
    }
}

/// A random model over the full FAS vocabulary.
///
/// The shape is: 1–3 pins, the fixed parameter set [`RICH_PARAMS`], a
/// chain of 2–8 `make` statements (each may be wrapped in an
/// `if (mode=dc)` guard or a relational branch assigning the same
/// variable on both arms), and a current impose on every pin. Every
/// generated model compiles; the *values* may legitimately reach
/// NaN/±inf (e.g. `ln` of a negative intermediate), which the
/// differential suite treats as agreement when both backends produce
/// the same non-finite class.
pub fn rich_model_source(rng: &mut Rng) -> String {
    let n_pins = 1 + rng.below(RICH_PINS.len());
    let mut body = String::new();
    let mut cx = GenCtx {
        n_pins,
        n_vars: 0,
        allow_state: true,
    };
    // Always define v0 from a pin so later templates have an operand.
    body.push_str(&format!("make v0 = volt.value({})\n", RICH_PINS[0]));
    cx.n_vars = 1;
    let n_stmts = 2 + rng.below(7);
    for _ in 0..n_stmts {
        let target = cx.n_vars;
        match rng.below(10) {
            // Mode guard: DC arm sees simple expressions, tran arm may
            // use state operators (the idiomatic FAS pattern).
            0 | 1 => {
                let dc_cx = GenCtx {
                    n_pins: cx.n_pins,
                    n_vars: cx.n_vars,
                    allow_state: false,
                };
                let dc = gen_expr(rng, 2, &dc_cx);
                let tran = gen_expr(rng, 2, &cx);
                body.push_str(&format!(
                    "if (mode=dc) then\nmake v{target} = {dc}\nelse\nmake v{target} = {tran}\nendif\n"
                ));
            }
            // Relational branch assigning the same variable on both arms.
            2 | 3 => {
                let lhs = gen_expr(rng, 1, &cx);
                let rhs = gen_expr(rng, 1, &cx);
                let op = RELOPS[rng.below(RELOPS.len())];
                let then_e = gen_expr(rng, 2, &cx);
                let else_e = gen_expr(rng, 2, &cx);
                body.push_str(&format!(
                    "if ({lhs} {op} {rhs}) then\nmake v{target} = {then_e}\nelse\nmake v{target} = {else_e}\nendif\n"
                ));
            }
            _ => {
                let e = gen_expr(rng, 3, &cx);
                body.push_str(&format!("make v{target} = {e}\n"));
            }
        }
        cx.n_vars += 1;
    }
    // Impose a current on every pin, referencing defined variables.
    for pin in RICH_PINS.iter().take(n_pins) {
        let src = rng.below(cx.n_vars.min(4));
        body.push_str(&format!("make curr.on({pin}) = (g * v{src})\n"));
    }
    let pins = RICH_PINS[..n_pins].join(", ");
    let params = RICH_PARAMS
        .iter()
        .map(|(n, v)| format!("{n}={v}"))
        .collect::<Vec<_>>()
        .join(", ");
    format!("model rich pin ({pins}) param ({params})\nanalog\n{body}endanalog\nendmodel\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;

    #[test]
    fn straight_line_models_compile() {
        let mut rng = Rng::new(0xF45_0003);
        for _ in 0..64 {
            let src = straight_line_source(&mut rng);
            assert!(compile(&src).is_ok(), "{src}");
        }
    }

    #[test]
    fn rich_models_compile() {
        let mut rng = Rng::new(0xF45_0004);
        for i in 0..200 {
            let src = rich_model_source(&mut rng);
            assert!(compile(&src).is_ok(), "case {i}:\n{src}");
        }
    }

    #[test]
    fn rich_models_are_deterministic() {
        let a = rich_model_source(&mut Rng::new(42));
        let b = rich_model_source(&mut Rng::new(42));
        assert_eq!(a, b);
    }
}
