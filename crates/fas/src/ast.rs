//! Abstract syntax tree of a FAS model.

use crate::Pos;

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// Arithmetic negation.
    Neg,
}

/// Binary arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
}

/// Comparison operators in conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RelOp {
    /// `=`.
    Eq,
    /// `!=`.
    Ne,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
}

impl RelOp {
    /// Applies the comparison.
    pub fn apply(self, a: f64, b: f64) -> bool {
        match self {
            RelOp::Eq => a == b,
            RelOp::Ne => a != b,
            RelOp::Lt => a < b,
            RelOp::Le => a <= b,
            RelOp::Gt => a > b,
            RelOp::Ge => a >= b,
        }
    }
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Numeric literal.
    Num(f64),
    /// Variable / parameter / builtin reference.
    Var(String),
    /// Pin access such as `volt.value(in)`.
    PinValue {
        /// Access prefix (`volt`, `omega`, `temp`).
        quantity: String,
        /// Pin name.
        pin: String,
    },
    /// Unary operation.
    Unary(UnaryOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Intrinsic function call (`sin`, `limit`, `max`, …).
    Call {
        /// Function name.
        func: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// `state.dt(expr)` — time derivative.
    StateDt {
        /// Per-model instance index (assigned by the parser).
        inst: usize,
        /// Differentiated expression.
        arg: Box<Expr>,
    },
    /// `state.delay(var)` — value of `var` at the previous accepted point.
    StateDelay {
        /// Delayed variable name.
        var: String,
    },
    /// `state.delayt(var, td)` — value of `var` a fixed time ago.
    StateDelayT {
        /// Instance index.
        inst: usize,
        /// Delayed variable name.
        var: String,
        /// Delay time expression.
        td: Box<Expr>,
    },
    /// `state.idt(expr)` — running time integral.
    StateIdt {
        /// Instance index.
        inst: usize,
        /// Integrated expression.
        arg: Box<Expr>,
    },
}

/// A condition of an `if` statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Cond {
    /// `mode = dc` (`true`) or `mode = tran` (`false`).
    ModeIs {
        /// Whether the tested mode is DC.
        dc: bool,
    },
    /// Numeric comparison.
    Cmp(RelOp, Expr, Expr),
}

/// A statement of the analog body.
///
/// Every variant carries the source position of its first token so that
/// diagnostics (`gabm-lint`) can point back into the listing. Positions are
/// deliberately excluded from equality: a printed-and-reparsed model
/// compares equal to the original even though the layout moved.
#[derive(Debug, Clone)]
pub enum Stmt {
    /// `make var = expr`.
    Make {
        /// Target variable.
        var: String,
        /// Value expression.
        expr: Expr,
        /// Source position of the statement.
        pos: Pos,
    },
    /// `make curr.on(pin) = expr` — impose a through quantity.
    Impose {
        /// Access prefix (`curr`, `torque`, `heat`).
        quantity: String,
        /// Pin name.
        pin: String,
        /// Imposed expression.
        expr: Expr,
        /// Source position of the statement.
        pos: Pos,
    },
    /// `if (cond) then … [else …] endif`.
    If {
        /// Branch condition.
        cond: Cond,
        /// Taken when the condition holds.
        then_branch: Vec<Stmt>,
        /// Taken otherwise.
        else_branch: Vec<Stmt>,
        /// Source position of the statement.
        pos: Pos,
    },
}

impl Stmt {
    /// Source position of the statement's first token.
    pub fn pos(&self) -> Pos {
        match self {
            Stmt::Make { pos, .. } | Stmt::Impose { pos, .. } | Stmt::If { pos, .. } => *pos,
        }
    }
}

// Positions are presentation metadata, not meaning: two models with the
// same statements at different places in the file are the same model.
impl PartialEq for Stmt {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (
                Stmt::Make { var, expr, pos: _ },
                Stmt::Make {
                    var: v2,
                    expr: e2,
                    pos: _,
                },
            ) => var == v2 && expr == e2,
            (
                Stmt::Impose {
                    quantity,
                    pin,
                    expr,
                    pos: _,
                },
                Stmt::Impose {
                    quantity: q2,
                    pin: p2,
                    expr: e2,
                    pos: _,
                },
            ) => quantity == q2 && pin == p2 && expr == e2,
            (
                Stmt::If {
                    cond,
                    then_branch,
                    else_branch,
                    pos: _,
                },
                Stmt::If {
                    cond: c2,
                    then_branch: t2,
                    else_branch: e2,
                    pos: _,
                },
            ) => cond == c2 && then_branch == t2 && else_branch == e2,
            _ => false,
        }
    }
}

/// A parsed model file.
#[derive(Debug, Clone, PartialEq)]
pub struct Model {
    /// Model name.
    pub name: String,
    /// Pin names in declaration order (= device pin order).
    pub pins: Vec<String>,
    /// Parameters with default values.
    pub params: Vec<(String, f64)>,
    /// Analog body statements.
    pub body: Vec<Stmt>,
    /// Number of `state.dt` instances.
    pub n_dt: usize,
    /// Number of `state.delayt` instances.
    pub n_delayt: usize,
    /// Number of `state.idt` instances.
    pub n_idt: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relop_apply() {
        assert!(RelOp::Eq.apply(1.0, 1.0));
        assert!(RelOp::Ne.apply(1.0, 2.0));
        assert!(RelOp::Lt.apply(1.0, 2.0));
        assert!(RelOp::Le.apply(2.0, 2.0));
        assert!(RelOp::Gt.apply(3.0, 2.0));
        assert!(RelOp::Ge.apply(2.0, 2.0));
        assert!(!RelOp::Lt.apply(2.0, 1.0));
    }
}
