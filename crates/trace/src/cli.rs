//! Shared command-line wiring for tracing, used by both the `gabm` and
//! `harness` binaries so flag behaviour — and, crucially, the error
//! messages that *name the offending flag* — stay identical everywhere.

/// Resolved tracing request for one process invocation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceConfig {
    /// Chrome trace-event JSON output path (`--trace <path>` or the
    /// `GABM_TRACE` environment variable).
    pub out: Option<String>,
    /// Print the plain-text hierarchical summary to stdout
    /// (`--trace-summary`).
    pub summary: bool,
}

impl TraceConfig {
    /// `true` when any trace output was requested.
    pub fn active(&self) -> bool {
        self.out.is_some() || self.summary
    }
}

/// Reads the `GABM_TRACE` environment fallback (an output path; unset or
/// empty means disabled).
pub fn env_trace() -> Option<String> {
    match std::env::var("GABM_TRACE") {
        Ok(v) if !v.is_empty() => Some(v),
        _ => None,
    }
}

/// Removes every `--trace <path>` / `--trace-summary` occurrence from
/// `argv` (any position, so they compose with subcommands and
/// `--threads`) and resolves the `GABM_TRACE` fallback.
///
/// # Errors
///
/// A message naming the flag when `--trace` is missing its value or the
/// value looks like another flag.
pub fn take_trace_flags(argv: &mut Vec<String>) -> Result<TraceConfig, String> {
    let mut out = None;
    let mut summary = false;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--trace" => {
                if i + 1 >= argv.len() {
                    return Err("--trace requires a value".to_string());
                }
                let value = argv.remove(i + 1);
                if value.starts_with('-') {
                    return Err(format!(
                        "invalid value '{value}' for --trace: expected an output file path"
                    ));
                }
                argv.remove(i);
                out = Some(value);
            }
            "--trace-summary" => {
                summary = true;
                argv.remove(i);
            }
            _ => i += 1,
        }
    }
    if out.is_none() {
        out = env_trace();
    }
    Ok(TraceConfig { out, summary })
}

/// Removes every `--threads <n>` occurrence from `argv` and returns the
/// last value. Shared by `gabm` and `harness` so both report unknown
/// values with identical flag-naming messages.
///
/// # Errors
///
/// A message naming the flag for a missing or non-positive-integer value.
pub fn take_threads_flag(argv: &mut Vec<String>) -> Result<Option<usize>, String> {
    let mut threads = None;
    let mut i = 0;
    while i < argv.len() {
        if argv[i] == "--threads" {
            if i + 1 >= argv.len() {
                return Err("--threads requires a value".to_string());
            }
            let value = argv.remove(i + 1);
            argv.remove(i);
            match value.parse::<usize>() {
                Ok(n) if n >= 1 => threads = Some(n),
                _ => {
                    return Err(format!(
                        "invalid value '{value}' for --threads: expected a positive integer"
                    ))
                }
            }
        } else {
            i += 1;
        }
    }
    Ok(threads)
}

/// Starts collection when the config asks for any output.
pub fn maybe_enable(cfg: &TraceConfig) {
    if cfg.active() {
        crate::enable();
    }
}

/// Stops collection and writes the requested outputs: the Chrome JSON
/// file and/or the text summary on stdout. A no-op for an inactive
/// config.
///
/// # Errors
///
/// A message naming the path when the trace file cannot be written.
pub fn finalize(cfg: &TraceConfig) -> Result<(), String> {
    if !cfg.active() {
        return Ok(());
    }
    let trace = crate::finish();
    if let Some(path) = &cfg.out {
        std::fs::write(path, trace.to_chrome_json(false))
            .map_err(|e| format!("cannot write trace to '{path}': {e}"))?;
    }
    if cfg.summary {
        print!("{}", trace.summary());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn trace_flag_is_taken_anywhere() {
        let mut a = argv(&["compile", "--trace", "out.json", "x.fas"]);
        let cfg = take_trace_flags(&mut a).unwrap();
        assert_eq!(cfg.out.as_deref(), Some("out.json"));
        assert_eq!(a, argv(&["compile", "x.fas"]));

        let mut b = argv(&["--trace-summary", "lint", "y.fas"]);
        let cfg = take_trace_flags(&mut b).unwrap();
        assert!(cfg.summary);
        assert_eq!(b, argv(&["lint", "y.fas"]));
    }

    #[test]
    fn trace_flag_errors_name_the_flag() {
        let mut a = argv(&["compile", "--trace"]);
        let err = take_trace_flags(&mut a).unwrap_err();
        assert!(err.contains("--trace"), "{err}");
        let mut b = argv(&["--trace", "--threads"]);
        let err = take_trace_flags(&mut b).unwrap_err();
        assert!(
            err.contains("--trace") && err.contains("--threads"),
            "{err}"
        );
    }

    #[test]
    fn threads_flag_parses_and_rejects() {
        let mut a = argv(&["fig7", "--threads", "4"]);
        assert_eq!(take_threads_flag(&mut a).unwrap(), Some(4));
        assert_eq!(a, argv(&["fig7"]));

        let mut b = argv(&["--threads", "zero"]);
        let err = take_threads_flag(&mut b).unwrap_err();
        assert!(err.contains("--threads") && err.contains("zero"), "{err}");

        let mut c = argv(&["--threads"]);
        let err = take_threads_flag(&mut c).unwrap_err();
        assert_eq!(err, "--threads requires a value");
    }

    #[test]
    fn threads_and_trace_flags_compose() {
        let mut a = argv(&[
            "--threads",
            "2",
            "--trace",
            "t.json",
            "compile",
            "--trace-summary",
            "f.fas",
        ]);
        let cfg = take_trace_flags(&mut a).unwrap();
        assert_eq!(cfg.out.as_deref(), Some("t.json"));
        assert!(cfg.summary);
        assert_eq!(take_threads_flag(&mut a).unwrap(), Some(2));
        assert_eq!(a, argv(&["compile", "f.fas"]));
    }
}
