//! # gabm-trace — structured tracing for the simulation stack
//!
//! An in-tree, zero-external-dependency observability layer: hierarchical
//! spans with nanosecond timing, named counters and gauges, and per-thread
//! event buffers that merge at flush. The collector exports Chrome
//! trace-event JSON (loadable in `chrome://tracing` / Perfetto) and a
//! plain-text hierarchical summary.
//!
//! Tracing is compiled in but **off by default**: every probe starts with a
//! single relaxed atomic load, so instrumented hot paths cost one
//! predictable branch when disabled (`harness traceov` measures the
//! overhead and CI gates it at ≤2 % on the comparator transient).
//!
//! ```
//! gabm_trace::enable();
//! {
//!     let _outer = gabm_trace::span("demo.outer");
//!     let _inner = gabm_trace::span("demo.inner");
//!     gabm_trace::add("demo.widgets", 3);
//! }
//! let trace = gabm_trace::finish();
//! assert_eq!(trace.counters, vec![("demo.widgets".to_string(), 3)]);
//! assert!(trace.to_chrome_json(true).contains("demo.inner"));
//! ```
//!
//! ## Model
//!
//! * [`span`] returns an RAII guard; nesting on a thread comes from the
//!   begin/end ordering of guards, so the caller never threads IDs around.
//! * [`span_root`] starts a *detached* span: summaries and
//!   [`Trace::structure`] treat it as a new logical root. The work-stealing
//!   pool wraps every job in one, which is what makes span structure
//!   identical at any thread count (a job inlined on the caller's thread
//!   would otherwise nest under the caller).
//! * [`add`] bumps a named counter; [`gauge_max`] keeps the maximum of a
//!   named gauge. Both merge across threads at flush (sum / max).
//! * Each thread owns its buffer behind an uncontended mutex registered in
//!   a process-wide list; nothing is shared on the hot path, and
//!   [`snapshot`] / [`finish`] merge the buffers into a [`Trace`].

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

pub mod cli;
mod export;

static ENABLED: AtomicBool = AtomicBool::new(false);
/// Bumped on every [`enable`]; buffers lazily discard events from older
/// epochs, so re-enabling never mixes two sessions.
static EPOCH: AtomicU64 = AtomicU64::new(0);
static NEXT_SEQ: AtomicUsize = AtomicUsize::new(0);

/// `true` while a trace session is collecting. One relaxed load — this is
/// the entire disabled-path cost of every probe.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

fn clock() -> &'static Mutex<Option<Instant>> {
    static CLOCK: OnceLock<Mutex<Option<Instant>>> = OnceLock::new();
    CLOCK.get_or_init(|| Mutex::new(None))
}

fn registry() -> &'static Mutex<Vec<Arc<Mutex<Buffer>>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<Mutex<Buffer>>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

/// Starts (or restarts) a trace session: resets the clock to zero and
/// invalidates events from any previous session.
pub fn enable() {
    *clock().lock().unwrap() = Some(Instant::now());
    EPOCH.fetch_add(1, Ordering::AcqRel);
    ENABLED.store(true, Ordering::Release);
}

/// Stops collection. Already-buffered events stay available to
/// [`snapshot`] until the next [`enable`].
pub fn disable() {
    ENABLED.store(false, Ordering::Release);
}

/// One buffered trace event. Timestamps are nanoseconds since [`enable`].
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// Span start.
    Begin {
        /// Span name (dotted taxonomy, e.g. `sim.tran.step`).
        name: &'static str,
        /// Nanoseconds since the session started.
        ts_ns: u64,
        /// Detached spans restart the logical path (see [`span_root`]).
        detached: bool,
        /// Optional single key/value annotation.
        arg: Option<(&'static str, String)>,
    },
    /// Span end, closing the most recent unclosed [`Event::Begin`] on the
    /// same thread.
    End {
        /// Nanoseconds since the session started.
        ts_ns: u64,
    },
}

impl Event {
    /// The event timestamp in nanoseconds since the session started.
    pub fn ts_ns(&self) -> u64 {
        match *self {
            Event::Begin { ts_ns, .. } | Event::End { ts_ns } => ts_ns,
        }
    }
}

#[derive(Debug, Default)]
struct Buffer {
    epoch: u64,
    thread: String,
    seq: usize,
    events: Vec<Event>,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, u64>,
}

struct Tls {
    epoch: u64,
    start: Instant,
    buf: Arc<Mutex<Buffer>>,
}

thread_local! {
    static TLS: RefCell<Option<Tls>> = const { RefCell::new(None) };
}

/// Runs `f` against this thread's buffer (synced to the current epoch)
/// with the current session timestamp.
fn with_buffer(f: impl FnOnce(&mut Buffer, u64)) {
    let epoch = EPOCH.load(Ordering::Acquire);
    TLS.with(|cell| {
        let mut slot = cell.borrow_mut();
        let tls = slot.get_or_insert_with(|| {
            let buf = Arc::new(Mutex::new(Buffer {
                thread: std::thread::current()
                    .name()
                    .unwrap_or("thread")
                    .to_string(),
                seq: NEXT_SEQ.fetch_add(1, Ordering::Relaxed),
                ..Buffer::default()
            }));
            registry().lock().unwrap().push(Arc::clone(&buf));
            Tls {
                epoch: 0,
                start: Instant::now(),
                buf,
            }
        });
        if tls.epoch != epoch {
            tls.epoch = epoch;
            tls.start = clock().lock().unwrap().unwrap_or_else(Instant::now);
        }
        let now = tls.start.elapsed().as_nanos() as u64;
        let mut b = tls.buf.lock().unwrap();
        if b.epoch != epoch {
            b.epoch = epoch;
            b.events.clear();
            b.counters.clear();
            b.gauges.clear();
        }
        f(&mut b, now);
    });
}

/// RAII span guard: records the end event when dropped. Guards are
/// thread-bound (`!Send`) — nesting is defined by begin/end order on one
/// thread.
#[must_use = "a span measures the scope it is alive in"]
pub struct Span {
    epoch: u64,
    live: bool,
    _not_send: PhantomData<*const ()>,
}

impl Span {
    const fn noop() -> Span {
        Span {
            epoch: 0,
            live: false,
            _not_send: PhantomData,
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.live || !enabled() {
            return;
        }
        let epoch = self.epoch;
        with_buffer(|b, now| {
            if b.epoch == epoch {
                b.events.push(Event::End { ts_ns: now });
            }
        });
    }
}

fn begin(name: &'static str, detached: bool, arg: Option<(&'static str, String)>) -> Span {
    let mut epoch = 0;
    with_buffer(|b, now| {
        b.events.push(Event::Begin {
            name,
            ts_ns: now,
            detached,
            arg,
        });
        epoch = b.epoch;
    });
    Span {
        epoch,
        live: true,
        _not_send: PhantomData,
    }
}

/// Opens a span nested under the enclosing span of the current thread.
#[inline]
pub fn span(name: &'static str) -> Span {
    if !enabled() {
        return Span::noop();
    }
    begin(name, false, None)
}

/// Opens a *detached* span: a new logical root, regardless of what is
/// open on this thread. Used for pool jobs so the span structure does not
/// depend on whether a job ran inline or on a worker.
#[inline]
pub fn span_root(name: &'static str) -> Span {
    if !enabled() {
        return Span::noop();
    }
    begin(name, true, None)
}

/// Opens a span with one key/value annotation. The value closure only
/// runs when tracing is enabled, so call sites pay nothing for the
/// formatting when disabled.
#[inline]
pub fn span_with(name: &'static str, key: &'static str, value: impl FnOnce() -> String) -> Span {
    if !enabled() {
        return Span::noop();
    }
    begin(name, false, Some((key, value())))
}

/// Adds `delta` to the named counter (summed across threads at flush).
#[inline]
pub fn add(name: &str, delta: u64) {
    if !enabled() || delta == 0 {
        return;
    }
    with_buffer(|b, _| match b.counters.get_mut(name) {
        Some(v) => *v += delta,
        None => {
            b.counters.insert(name.to_string(), delta);
        }
    });
}

/// Records a gauge observation, keeping the maximum (per thread, then the
/// maximum across threads at flush).
#[inline]
pub fn gauge_max(name: &str, value: u64) {
    if !enabled() {
        return;
    }
    with_buffer(|b, _| match b.gauges.get_mut(name) {
        Some(v) => *v = (*v).max(value),
        None => {
            b.gauges.insert(name.to_string(), value);
        }
    });
}

/// Event stream of one thread, in emission order.
#[derive(Debug, Clone, PartialEq)]
pub struct ThreadTrace {
    /// OS thread name at first event (`main`, `gabm-par-3`, …).
    pub name: String,
    /// Begin/end events in the order they were recorded.
    pub events: Vec<Event>,
}

/// A merged, immutable trace session: per-thread event streams plus
/// cross-thread counter and gauge totals.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// Per-thread streams, sorted by thread name (registration order
    /// breaks ties) for stable output.
    pub threads: Vec<ThreadTrace>,
    /// Counter totals, summed across threads, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge maxima across threads, sorted by name.
    pub gauges: Vec<(String, u64)>,
    /// Largest event timestamp (ns); used to close unfinished spans.
    pub end_ns: u64,
}

/// Merges every thread's buffer for the current session into a [`Trace`]
/// without stopping collection.
pub fn snapshot() -> Trace {
    let epoch = EPOCH.load(Ordering::Acquire);
    let bufs: Vec<Arc<Mutex<Buffer>>> = registry().lock().unwrap().clone();
    let mut picked: Vec<(String, usize, Vec<Event>)> = Vec::new();
    let mut counters: BTreeMap<String, u64> = BTreeMap::new();
    let mut gauges: BTreeMap<String, u64> = BTreeMap::new();
    for buf in bufs {
        let b = buf.lock().unwrap();
        if b.epoch != epoch {
            continue;
        }
        for (name, v) in &b.counters {
            *counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, v) in &b.gauges {
            let slot = gauges.entry(name.clone()).or_insert(0);
            *slot = (*slot).max(*v);
        }
        if !b.events.is_empty() {
            picked.push((b.thread.clone(), b.seq, b.events.clone()));
        }
    }
    picked.sort_by(|a, b| (&a.0, a.1).cmp(&(&b.0, b.1)));
    let end_ns = picked
        .iter()
        .flat_map(|(_, _, evs)| evs.iter().map(Event::ts_ns))
        .max()
        .unwrap_or(0);
    Trace {
        threads: picked
            .into_iter()
            .map(|(name, _, events)| ThreadTrace { name, events })
            .collect(),
        counters: counters.into_iter().collect(),
        gauges: gauges.into_iter().collect(),
        end_ns,
    }
}

/// Stops collection and returns the merged trace.
pub fn finish() -> Trace {
    disable();
    snapshot()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Trace state is process-global; tests that enable it must not
    /// overlap under the parallel test runner.
    pub(crate) fn lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_probes_are_inert() {
        let _g = lock();
        disable();
        let _s = span("t.nothing");
        add("t.counter", 5);
        gauge_max("t.gauge", 9);
        enable();
        let t = finish();
        assert!(t.threads.is_empty());
        assert!(t.counters.is_empty());
        assert!(t.gauges.is_empty());
    }

    #[test]
    fn spans_nest_and_counters_sum() {
        let _g = lock();
        enable();
        {
            let _a = span("t.outer");
            add("t.n", 1);
            {
                let _b = span("t.inner");
                add("t.n", 2);
            }
        }
        let t = finish();
        assert_eq!(t.threads.len(), 1);
        let evs = &t.threads[0].events;
        assert_eq!(evs.len(), 4);
        assert!(matches!(
            evs[0],
            Event::Begin {
                name: "t.outer",
                ..
            }
        ));
        assert!(matches!(
            evs[1],
            Event::Begin {
                name: "t.inner",
                ..
            }
        ));
        assert!(matches!(evs[2], Event::End { .. }));
        assert!(matches!(evs[3], Event::End { .. }));
        assert_eq!(t.counters, vec![("t.n".to_string(), 3)]);
    }

    #[test]
    fn threads_merge_and_gauges_take_max() {
        let _g = lock();
        enable();
        add("t.shared", 1);
        gauge_max("t.depth", 2);
        std::thread::Builder::new()
            .name("trace-test-worker".into())
            .spawn(|| {
                let _s = span_root("t.job");
                add("t.shared", 10);
                gauge_max("t.depth", 7);
                gauge_max("t.depth", 3);
            })
            .unwrap()
            .join()
            .unwrap();
        let t = finish();
        assert_eq!(t.counters, vec![("t.shared".to_string(), 11)]);
        assert_eq!(t.gauges, vec![("t.depth".to_string(), 7)]);
        let worker = t
            .threads
            .iter()
            .find(|th| th.name == "trace-test-worker")
            .expect("worker thread registered");
        assert!(matches!(
            worker.events[0],
            Event::Begin { detached: true, .. }
        ));
    }

    #[test]
    fn reenable_discards_previous_session() {
        let _g = lock();
        enable();
        add("t.old", 1);
        enable();
        add("t.new", 2);
        let t = finish();
        assert_eq!(t.counters, vec![("t.new".to_string(), 2)]);
    }

    #[test]
    fn timestamps_are_monotonic() {
        let _g = lock();
        enable();
        {
            let _a = span("t.a");
            let _b = span("t.b");
        }
        let t = finish();
        let ts: Vec<u64> = t.threads[0].events.iter().map(Event::ts_ns).collect();
        let mut sorted = ts.clone();
        sorted.sort_unstable();
        assert_eq!(ts, sorted);
        assert_eq!(t.end_ns, *ts.last().unwrap());
    }
}
