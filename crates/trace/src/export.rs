//! Trace exporters: Chrome trace-event JSON, hierarchical text summary
//! and the timestamp-free span structure used by determinism tests.

use crate::{Event, Trace};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Minimal JSON string escaping (the only JSON this crate emits; parsing
/// lives in `core::json` to keep this crate dependency-free).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Chrome's `ts` field is microseconds; keep sub-µs precision.
fn ts_us(ts_ns: u64, zero_ts: bool) -> String {
    if zero_ts {
        "0.000".to_string()
    } else {
        format!("{:.3}", ts_ns as f64 / 1000.0)
    }
}

/// Span category: the dotted prefix (`sim.tran.step` → `sim`).
fn category(name: &str) -> &str {
    name.split('.').next().unwrap_or(name)
}

impl Trace {
    /// Renders the trace in Chrome trace-event JSON (the object form with
    /// a `traceEvents` array), loadable in `chrome://tracing` and
    /// Perfetto. With `zero_ts` every timestamp is zeroed — event order
    /// and nesting stay intact — which is what golden tests pin.
    ///
    /// Spans left open at flush are closed at the final timestamp so the
    /// output always balances begin/end pairs.
    pub fn to_chrome_json(&self, zero_ts: bool) -> String {
        let mut lines: Vec<String> = Vec::new();
        lines.push(
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
             \"args\":{\"name\":\"gabm\"}}"
                .to_string(),
        );
        for (tid, th) in self.threads.iter().enumerate() {
            lines.push(format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
                 \"args\":{{\"name\":\"{}\"}}}}",
                escape(&th.name)
            ));
        }
        for (tid, th) in self.threads.iter().enumerate() {
            let mut open: Vec<&'static str> = Vec::new();
            for ev in &th.events {
                match ev {
                    Event::Begin {
                        name, ts_ns, arg, ..
                    } => {
                        open.push(name);
                        let args = match arg {
                            Some((k, v)) => {
                                format!(",\"args\":{{\"{k}\":\"{}\"}}", escape(v))
                            }
                            None => String::new(),
                        };
                        lines.push(format!(
                            "{{\"name\":\"{name}\",\"cat\":\"{}\",\"ph\":\"B\",\"pid\":1,\
                             \"tid\":{tid},\"ts\":{}{args}}}",
                            category(name),
                            ts_us(*ts_ns, zero_ts)
                        ));
                    }
                    Event::End { ts_ns } => {
                        if let Some(name) = open.pop() {
                            lines.push(format!(
                                "{{\"name\":\"{name}\",\"cat\":\"{}\",\"ph\":\"E\",\"pid\":1,\
                                 \"tid\":{tid},\"ts\":{}}}",
                                category(name),
                                ts_us(*ts_ns, zero_ts)
                            ));
                        }
                    }
                }
            }
            // Close anything still open so B/E pairs always balance.
            while let Some(name) = open.pop() {
                lines.push(format!(
                    "{{\"name\":\"{name}\",\"cat\":\"{}\",\"ph\":\"E\",\"pid\":1,\
                     \"tid\":{tid},\"ts\":{}}}",
                    category(name),
                    ts_us(self.end_ns, zero_ts)
                ));
            }
        }
        for (name, value) in &self.counters {
            lines.push(format!(
                "{{\"name\":\"{}\",\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":{},\
                 \"args\":{{\"value\":{value}}}}}",
                escape(name),
                ts_us(self.end_ns, zero_ts)
            ));
        }
        for (name, value) in &self.gauges {
            lines.push(format!(
                "{{\"name\":\"{}\",\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":{},\
                 \"args\":{{\"max\":{value}}}}}",
                escape(name),
                ts_us(self.end_ns, zero_ts)
            ));
        }
        let mut out = String::from("{\"traceEvents\":[\n");
        out.push_str(&lines.join(",\n"));
        out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
        out
    }

    /// Walks one thread's events, calling `visit(path, duration_ns)` for
    /// every span. Paths join span names with `/`; a detached span starts
    /// a fresh path. Open spans close at `end_ns`.
    fn walk(&self, visit: &mut impl FnMut(&str, u64)) {
        for th in &self.threads {
            let mut stack: Vec<(String, u64)> = Vec::new();
            for ev in &th.events {
                match ev {
                    Event::Begin {
                        name,
                        ts_ns,
                        detached,
                        ..
                    } => {
                        let path = match stack.last() {
                            Some((parent, _)) if !detached => format!("{parent}/{name}"),
                            _ => (*name).to_string(),
                        };
                        stack.push((path, *ts_ns));
                    }
                    Event::End { ts_ns } => {
                        if let Some((path, t0)) = stack.pop() {
                            visit(&path, ts_ns.saturating_sub(t0));
                        }
                    }
                }
            }
            while let Some((path, t0)) = stack.pop() {
                visit(&path, self.end_ns.saturating_sub(t0));
            }
        }
    }

    /// The timestamp-free span structure: every logical span path mapped
    /// to its call count, merged across threads. Two runs of the same
    /// deterministic workload produce identical structures at any thread
    /// count (pool jobs are detached roots).
    pub fn structure(&self) -> BTreeMap<String, usize> {
        let mut map = BTreeMap::new();
        self.walk(&mut |path, _| *map.entry(path.to_string()).or_insert(0) += 1);
        map
    }

    /// Total number of spans (begin events) across all threads.
    pub fn span_count(&self) -> usize {
        self.threads
            .iter()
            .flat_map(|t| &t.events)
            .filter(|e| matches!(e, Event::Begin { .. }))
            .count()
    }

    /// Total number of buffered events (begin + end) across all threads.
    pub fn event_count(&self) -> usize {
        self.threads.iter().map(|t| t.events.len()).sum()
    }

    /// Plain-text hierarchical summary: call counts and cumulative wall
    /// time per span path, then counter and gauge totals.
    pub fn summary(&self) -> String {
        let mut agg: BTreeMap<String, (usize, u64)> = BTreeMap::new();
        self.walk(&mut |path, dur| {
            let e = agg.entry(path.to_string()).or_insert((0, 0));
            e.0 += 1;
            e.1 += dur;
        });
        let mut out = String::new();
        let _ = writeln!(
            out,
            "trace summary: {} thread(s), {} span(s), {:.3} ms",
            self.threads.len(),
            self.span_count(),
            self.end_ns as f64 / 1e6
        );
        if !agg.is_empty() {
            let _ = writeln!(out, "  {:<48} {:>8} {:>12}", "span", "calls", "total");
            for (path, (calls, total_ns)) in &agg {
                let depth = path.matches('/').count();
                let name = path.rsplit('/').next().unwrap_or(path);
                let label = format!("{}{}", "  ".repeat(depth), name);
                let _ = writeln!(
                    out,
                    "  {label:<48} {calls:>8} {:>9.3} ms",
                    *total_ns as f64 / 1e6
                );
            }
        }
        if !self.counters.is_empty() {
            let _ = writeln!(out, "counters:");
            for (name, v) in &self.counters {
                let _ = writeln!(out, "  {name:<48} {v:>8}");
            }
        }
        if !self.gauges.is_empty() {
            let _ = writeln!(out, "gauges (max):");
            for (name, v) in &self.gauges {
                let _ = writeln!(out, "  {name:<48} {v:>8}");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::tests::lock;
    use crate::{add, enable, finish, gauge_max, span, span_root};

    #[test]
    fn chrome_json_balances_and_escapes() {
        let _g = lock();
        enable();
        {
            let _a = span("x.outer");
            let _b = crate::span_with("x.inner", "k", || "a\"b\\c".to_string());
        }
        add("x.count", 2);
        gauge_max("x.depth", 4);
        let t = finish();
        let json = t.to_chrome_json(true);
        assert_eq!(json.matches("\"ph\":\"B\"").count(), 2);
        assert_eq!(json.matches("\"ph\":\"E\"").count(), 2);
        assert!(json.contains("\\\"b\\\\c"));
        assert!(json.contains("\"x.count\""));
        assert!(json.contains("\"max\":4"));
        assert!(json.contains("\"ts\":0.000"));
        assert!(!t.to_chrome_json(false).contains("\"ts\":0.000}"));
    }

    #[test]
    fn open_spans_are_closed_at_flush() {
        let _g = lock();
        enable();
        let s = span("x.open");
        let t = finish();
        drop(s);
        let json = t.to_chrome_json(true);
        assert_eq!(json.matches("\"ph\":\"B\"").count(), 1);
        assert_eq!(json.matches("\"ph\":\"E\"").count(), 1);
        assert_eq!(t.structure().get("x.open"), Some(&1));
    }

    #[test]
    fn structure_restarts_at_detached_roots() {
        let _g = lock();
        enable();
        {
            let _outer = span("x.caller");
            let _job = span_root("x.job");
            let _work = span("x.work");
        }
        let t = finish();
        let s = t.structure();
        assert_eq!(s.get("x.caller"), Some(&1));
        assert_eq!(s.get("x.job"), Some(&1));
        assert_eq!(s.get("x.job/x.work"), Some(&1));
        assert!(!s.keys().any(|k| k.starts_with("x.caller/")));
    }

    #[test]
    fn summary_lists_spans_and_counters() {
        let _g = lock();
        enable();
        {
            let _a = span("y.phase");
            add("y.items", 3);
        }
        let t = finish();
        let s = t.summary();
        assert!(s.starts_with("trace summary:"), "{s}");
        assert!(s.contains("y.phase"));
        assert!(s.contains("y.items"));
        assert!(s.contains("counters:"));
    }
}
