//! End-to-end tests of `gabm lint --fix`: files are repaired in place to a
//! fixpoint, repairs are idempotent, unfixable diagnostics survive, and
//! `--dry-run` never writes.

use gabm::core::json::Value;
use gabm::core::symbol::PropertyValue;
use gabm::core::{Dimension, FunctionalDiagram, SymbolKind};
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn gabm(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_gabm"))
        .args(args)
        .output()
        .expect("gabm binary runs")
}

fn exit_code(out: &Output) -> i32 {
    out.status.code().expect("no signal")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// Copies a fixture into the target tmpdir (under `name`) so `--fix` can
/// rewrite it without touching the checked-in file.
fn scratch_fixture(fixture: &str, name: &str) -> PathBuf {
    let src = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(fixture);
    let dst = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    std::fs::copy(src, &dst).expect("fixture copied");
    dst
}

/// The `"fix"` object from a `--fix --format json` run.
fn fix_report(out: &Output) -> Value {
    let v = Value::parse(&stdout(out)).expect("valid JSON");
    v.get("fix").expect("fix object present").clone()
}

fn fixed_codes(report: &Value) -> Vec<String> {
    report
        .get("fixed_codes")
        .and_then(Value::as_array)
        .expect("fixed_codes array")
        .iter()
        .map(|c| c.as_str().unwrap().to_string())
        .collect()
}

#[test]
fn unused_variable_fixture_lints_clean_after_fix() {
    let path = scratch_fixture("unused_variable.fas", "fix_unused.fas");
    let path = path.to_str().unwrap();
    let out = gabm(&["lint", path, "--fix", "--format", "json"]);
    assert_eq!(exit_code(&out), 0, "{out:?}");
    let report = fix_report(&out);
    assert_eq!(report.get("applied").and_then(Value::as_f64), Some(1.0));
    assert!(fixed_codes(&report).contains(&"GABM031".to_string()));
    let fixed = std::fs::read_to_string(path).unwrap();
    assert!(
        !fixed.contains("scratch"),
        "dead assignment deleted: {fixed}"
    );
    // The repaired file lints clean, even under --deny-warnings.
    let out = gabm(&["lint", path, "--deny-warnings", "--no-cache"]);
    assert_eq!(exit_code(&out), 0, "{out:?}");
}

#[test]
fn fix_is_idempotent_via_cli() {
    let path = scratch_fixture("dead_branch.fas", "fix_idem.fas");
    let path = path.to_str().unwrap();
    let out = gabm(&["lint", path, "--fix"]);
    assert_eq!(exit_code(&out), 0, "{out:?}");
    let once = std::fs::read_to_string(path).unwrap();
    assert!(!once.contains("if (1 >= 2)"), "dead branch pruned: {once}");
    let out = gabm(&["lint", path, "--fix", "--format", "json"]);
    assert_eq!(exit_code(&out), 0, "{out:?}");
    let report = fix_report(&out);
    assert_eq!(
        report.get("applied").and_then(Value::as_f64),
        Some(0.0),
        "second --fix finds nothing to do"
    );
    assert_eq!(report.get("written").and_then(Value::as_bool), Some(false));
    let twice = std::fs::read_to_string(path).unwrap();
    assert_eq!(once, twice, "--fix twice == --fix once");
}

#[test]
fn unfixable_errors_survive_fix_and_fail_the_run() {
    let path = scratch_fixture("const_arith.fas", "fix_const.fas");
    let path = path.to_str().unwrap();
    let out = gabm(&["lint", path, "--fix", "--format", "json"]);
    // The degenerate limit is repaired; division-by-zero and the ln domain
    // error have no mechanical remedy and keep the exit code at 1.
    assert_eq!(exit_code(&out), 1, "{out:?}");
    let v = Value::parse(&stdout(&out)).unwrap();
    assert_eq!(v.get("errors").and_then(Value::as_f64), Some(2.0));
    let report = v.get("fix").unwrap();
    assert!(fixed_codes(report).contains(&"GABM035".to_string()));
    let fixed = std::fs::read_to_string(path).unwrap();
    assert!(
        fixed.contains("limit(b, -10, 10)"),
        "bounds swapped in place: {fixed}"
    );
}

#[test]
fn dry_run_reports_but_never_writes() {
    let path = scratch_fixture("unused_variable.fas", "fix_dry.fas");
    let original = std::fs::read_to_string(&path).unwrap();
    let path = path.to_str().unwrap();
    let out = gabm(&["lint", path, "--fix", "--dry-run", "--format", "json"]);
    assert_eq!(exit_code(&out), 0, "{out:?}");
    let report = fix_report(&out);
    assert_eq!(report.get("applied").and_then(Value::as_f64), Some(1.0));
    assert_eq!(report.get("dry_run").and_then(Value::as_bool), Some(true));
    assert_eq!(report.get("written").and_then(Value::as_bool), Some(false));
    assert_eq!(
        std::fs::read_to_string(path).unwrap(),
        original,
        "--dry-run must not modify the file"
    );
}

/// A diagram whose every defect has an autofix: a degenerate limiter
/// (GABM011), a fully disconnected gain (GABM005), and a two-deep dead
/// side chain — the tail gain drives nothing (GABM004 removal fix), the
/// inner gain is transitively dead (GABM009) — whose removal cascades
/// into an unused parameter (GABM010).
fn fixable_diagram() -> FunctionalDiagram {
    let mut d = FunctionalDiagram::new("fixable");
    d.add_parameter("k", 2.0, Dimension::NONE);
    let pin_a = d.add_symbol(SymbolKind::Pin { name: "a".into() });
    let probe = d.add_symbol(SymbolKind::Probe {
        quantity: Dimension::VOLTAGE,
    });
    let lim = d.add_symbol_with(
        SymbolKind::Limiter,
        &[
            ("min", PropertyValue::Number(5.0)),
            ("max", PropertyValue::Number(-5.0)),
        ],
        None,
    );
    let pin_b = d.add_symbol(SymbolKind::Pin { name: "b".into() });
    let gen = d.add_symbol(SymbolKind::Generator {
        quantity: Dimension::VOLTAGE,
    });
    let _orphan = d.add_symbol_with(SymbolKind::Gain, &[("a", PropertyValue::Number(1.0))], None);
    let dead = d.add_symbol_with(
        SymbolKind::Gain,
        &[("a", PropertyValue::Param("k".into()))],
        None,
    );
    let dead_tail = d.add_symbol_with(SymbolKind::Gain, &[("a", PropertyValue::Number(1.0))], None);
    d.connect(d.port(pin_a, "pin").unwrap(), d.port(probe, "pin").unwrap())
        .unwrap();
    d.connect(d.port(probe, "out").unwrap(), d.port(lim, "in").unwrap())
        .unwrap();
    d.connect(d.port(lim, "out").unwrap(), d.port(gen, "in").unwrap())
        .unwrap();
    d.connect(d.port(gen, "pin").unwrap(), d.port(pin_b, "pin").unwrap())
        .unwrap();
    // Dead chain: driven by the probe, ends in a gain driving nothing.
    d.connect(d.port(probe, "out").unwrap(), d.port(dead, "in").unwrap())
        .unwrap();
    d.connect(
        d.port(dead, "out").unwrap(),
        d.port(dead_tail, "in").unwrap(),
    )
    .unwrap();
    d
}

#[test]
fn diagram_file_fix_repairs_multiple_codes_in_place() {
    let path = Path::new(env!("CARGO_TARGET_TMPDIR")).join("fix_diagram.json");
    std::fs::write(&path, gabm::core::json::to_string(&fixable_diagram())).unwrap();
    let path = path.to_str().unwrap();
    let out = gabm(&["lint", path, "--fix", "--format", "json"]);
    assert_eq!(exit_code(&out), 0, "{out:?}");
    let v = Value::parse(&stdout(&out)).unwrap();
    assert_eq!(v.get("errors").and_then(Value::as_f64), Some(0.0));
    assert_eq!(v.get("warnings").and_then(Value::as_f64), Some(0.0));
    let report = v.get("fix").unwrap();
    let codes = fixed_codes(report);
    for code in ["GABM004", "GABM005", "GABM009", "GABM010", "GABM011"] {
        assert!(codes.contains(&code.to_string()), "{code} fixed: {codes:?}");
    }
    assert_eq!(report.get("written").and_then(Value::as_bool), Some(true));
    // The rewritten diagram file lints clean end to end (diagram + IR).
    let out = gabm(&["lint", path, "--deny-warnings", "--no-cache"]);
    assert_eq!(exit_code(&out), 0, "{out:?}");
    let d: FunctionalDiagram =
        gabm::core::json::from_str(&std::fs::read_to_string(path).unwrap()).unwrap();
    assert_eq!(d.symbol_count(), 5, "orphan and both dead gains removed");
    assert!(d.parameters().is_empty(), "orphaned parameter removed");
}

#[test]
fn fix_repairs_at_least_six_distinct_codes_across_layers() {
    // Acceptance sweep: the union of codes the fixer repairs over the FAS
    // fixtures and the fixable diagram spans both layers and at least six
    // distinct GABM0xx codes (the IR-layer fixes are covered by unit
    // tests on fix_code_ir; via the CLI the IR is regenerated from the
    // repaired diagram instead of patched).
    let mut union: Vec<String> = Vec::new();
    for (fixture, name) in [
        ("unused_variable.fas", "sweep_unused.fas"),
        ("dead_branch.fas", "sweep_dead.fas"),
        ("const_arith.fas", "sweep_const.fas"),
    ] {
        let path = scratch_fixture(fixture, name);
        let out = gabm(&["lint", path.to_str().unwrap(), "--fix", "--format", "json"]);
        union.extend(fixed_codes(&fix_report(&out)));
    }
    let path = Path::new(env!("CARGO_TARGET_TMPDIR")).join("sweep_diagram.json");
    std::fs::write(&path, gabm::core::json::to_string(&fixable_diagram())).unwrap();
    let out = gabm(&["lint", path.to_str().unwrap(), "--fix", "--format", "json"]);
    union.extend(fixed_codes(&fix_report(&out)));
    union.sort();
    union.dedup();
    assert!(
        union.len() >= 6,
        "at least six distinct codes repaired, got {union:?}"
    );
    for code in [
        "GABM005", "GABM009", "GABM010", "GABM011", "GABM031", "GABM032", "GABM035",
    ] {
        assert!(union.contains(&code.to_string()), "{code} in {union:?}");
    }
}

#[test]
fn fix_on_construct_requires_dry_run() {
    let out = gabm(&["lint", "--construct", "input-stage", "--fix"]);
    assert_eq!(exit_code(&out), 2, "cannot write a built-in back: {out:?}");
    let out = gabm(&["lint", "--construct", "input-stage", "--fix", "--dry-run"]);
    assert_eq!(exit_code(&out), 0, "{out:?}");
    let out = gabm(&["lint", "--dry-run", "tests/fixtures/clean.fas"]);
    assert_eq!(exit_code(&out), 2, "--dry-run without --fix is an error");
}
