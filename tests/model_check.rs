//! E10 — the §2.4 model check as an integration test: generated models are
//! surrounded with extraction rigs and their instance parameters must be
//! recovered within tolerance.

use gabm::charac::{check_model, rigs};
use gabm::codegen::{generate, Backend};
use gabm::core::constructs::{InputStageSpec, OutputStageSpec};
use gabm::fas::compile;
use gabm::models::dut::fas_dut;
use gabm_bench::diagram_dut;
use std::collections::BTreeMap;

#[test]
fn input_stage_parameters_recovered() {
    let rin = 4.7e5;
    let cin = 12.0e-12;
    let diagram = InputStageSpec::new("in", 1.0 / rin, cin).diagram().unwrap();
    let dut = diagram_dut(&diagram).unwrap();
    let x_rin = rigs::input_resistance(&dut, "in", &[]).unwrap();
    let x_cin = rigs::input_capacitance(&dut, "in", &[], cin).unwrap();
    let report = check_model(
        "input_stage",
        &[(("rin", rin), &x_rin), (("cin", cin), &x_cin)],
        0.15,
    );
    assert!(report.passed(), "{report}");
}

#[test]
fn output_stage_parameters_recovered() {
    let gout = 2.0e-3;
    let ilim = 5.0e-3;
    let diagram = OutputStageSpec::new("out", gout)
        .with_current_limit(ilim)
        .diagram()
        .unwrap();
    let dut = diagram_dut(&diagram).unwrap();
    let x_rout = rigs::output_resistance(&dut, "out", &[], 1.0e-4).unwrap();
    let x_ilim = rigs::output_current_limit(&dut, "out", &[], 0.1, 0.5).unwrap();
    let report = check_model(
        "output_stage",
        &[(("rout", 1.0 / gout), &x_rout), (("ilim", ilim), &x_ilim)],
        0.2,
    );
    assert!(report.passed(), "{report}");
}

/// A model instantiated with *wrong* parameters must FAIL its check against
/// the intended values — the check is discriminative, not vacuous.
#[test]
fn detuned_model_fails_check() {
    let diagram = InputStageSpec::new("in", 1.0 / 1.0e6, 5.0e-12)
        .diagram()
        .unwrap();
    let code = generate(&diagram, Backend::Fas).unwrap();
    let model = compile(&code.text).unwrap();
    // Instantiate with half the conductance (double the resistance).
    let mut overrides = BTreeMap::new();
    overrides.insert("gin".to_string(), 0.5e-6);
    let dut = fas_dut(model, overrides).unwrap();
    let x_rin = rigs::input_resistance(&dut, "in", &[]).unwrap();
    let report = check_model("input_stage", &[(("rin", 1.0e6), &x_rin)], 0.15);
    assert!(!report.passed(), "detuned model passed: {report}");
    assert_eq!(report.failures(), 1);
}
