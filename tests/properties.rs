//! Randomized property tests on the workspace's core invariants.
//!
//! These were property-based (proptest) in spirit and remain so, but use
//! the workspace's own seeded PRNG so the suite is deterministic and has
//! no external dependencies (the repository must build fully offline).

use gabm::codegen::{generate, Backend};
use gabm::core::check_diagram;
use gabm::core::constructs::{InputStageSpec, OutputStageSpec, SlewRateSpec};
use gabm::core::quantity::Dimension;
use gabm::fas::compile;
use gabm::numeric::rng::Rng;
use gabm::numeric::{DenseMatrix, LuFactor, SparseLu, TripletBuilder};
use gabm::sim::analysis::tran::TranSpec;
use gabm::sim::circuit::Circuit;
use gabm::sim::devices::SourceWave;

/// LU: A·x = b within residual tolerance for any diagonally dominant
/// matrix, and dense/sparse agree.
#[test]
fn lu_solves_diagonally_dominant() {
    let mut rng = Rng::new(0x11);
    for _ in 0..64 {
        let n = 4;
        let mut dense = DenseMatrix::zeros(n, n);
        let mut trip = TripletBuilder::new(n, n);
        for i in 0..n {
            for j in 0..n {
                let e = rng.range(-1.0, 1.0);
                let v = if i == j { e + 4.0 } else { e };
                dense[(i, j)] = v;
                trip.push(i, j, v);
            }
        }
        let rhs: Vec<f64> = (0..n).map(|_| rng.range(-10.0, 10.0)).collect();
        let xd = LuFactor::new(&dense).unwrap().solve(&rhs).unwrap();
        let xs = SparseLu::new(&trip.to_csc()).unwrap().solve(&rhs).unwrap();
        let residual = dense.mul_vec(&xd).unwrap();
        for (r, b) in residual.iter().zip(&rhs) {
            assert!((r - b).abs() < 1e-8);
        }
        for (a, b) in xd.iter().zip(&xs) {
            assert!((a - b).abs() < 1e-8);
        }
    }
}

/// Dimension algebra is a commutative group under multiplication.
#[test]
fn dimension_group_laws() {
    let mut rng = Rng::new(0x22);
    let exp = |rng: &mut Rng| (rng.below(6) as i8) - 3;
    for _ in 0..64 {
        let da = Dimension::new(
            exp(&mut rng),
            exp(&mut rng),
            exp(&mut rng),
            exp(&mut rng),
            exp(&mut rng),
        );
        let db = Dimension::new(
            exp(&mut rng),
            exp(&mut rng),
            exp(&mut rng),
            exp(&mut rng),
            exp(&mut rng),
        );
        assert_eq!(da * db, db * da);
        assert_eq!(da * db / db, da);
        assert_eq!(da / da, Dimension::NONE);
        assert_eq!(da.per_time().times_time(), da);
    }
}

/// Pulse waveforms never leave the [v1, v2] envelope.
#[test]
fn pulse_stays_in_envelope() {
    let mut rng = Rng::new(0x33);
    for _ in 0..64 {
        let v1 = rng.range(-10.0, 10.0);
        let v2 = rng.range(-10.0, 10.0);
        let t = rng.range(0.0, 10.0);
        let delay = rng.range(0.0, 1.0);
        let width = rng.range(1e-3, 1.0);
        let period = rng.range(0.0, 2.0);
        let w = SourceWave::pulse(v1, v2, delay, 0.01, 0.02, width, period);
        let v = w.value_at(t);
        let (lo, hi) = (v1.min(v2), v1.max(v2));
        assert!(v >= lo - 1e-12 && v <= hi + 1e-12, "v = {v}");
    }
}

/// Every input stage over a broad parameter range survives the full
/// pipeline: consistent diagram, generated FAS compiles, and the model
/// draws the right DC current.
#[test]
fn input_stage_pipeline_total() {
    let mut rng = Rng::new(0x44);
    for _ in 0..64 {
        let rin = 10f64.powf(rng.range(3.0, 8.0));
        let cin = 10f64.powf(rng.range(-14.0, -9.0));
        let diagram = InputStageSpec::new("in", 1.0 / rin, cin).diagram().unwrap();
        assert!(check_diagram(&diagram).is_consistent());
        let code = generate(&diagram, Backend::Fas).unwrap();
        let model = compile(&code.text).unwrap();
        let machine = model.instantiate(&Default::default()).unwrap();
        let mut ckt = Circuit::new();
        let n = ckt.node("in");
        ckt.add_behavioral("X", &[n], Box::new(machine)).unwrap();
        ckt.add_vsource("V1", n, Circuit::GROUND, SourceWave::dc(1.0));
        let op = ckt.op().unwrap();
        let i = op.current_through(&ckt, "V1").unwrap();
        // Source sees the model's gin as load: i = -1/rin.
        assert!((i + 1.0 / rin).abs() < 1e-3 / rin + 1e-12, "i = {i}");
    }
}

/// All three backends generate non-empty code for all three constructs.
#[test]
fn all_backends_total_on_constructs() {
    for which in 0..3 {
        let diagram = match which {
            0 => InputStageSpec::new("in", 1e-6, 5e-12).diagram().unwrap(),
            1 => OutputStageSpec::new("out", 1e-3)
                .with_current_limit(1e-2)
                .diagram()
                .unwrap(),
            _ => SlewRateSpec::new(1e6, 1e6).diagram().unwrap(),
        };
        for backend in [Backend::Fas, Backend::VhdlAms, Backend::Mast] {
            let code = generate(&diagram, backend).unwrap();
            assert!(!code.text.is_empty());
            // FAS output must always compile — for diagrams with pins; an
            // open fragment like the bare slew-rate block is not a device
            // model.
            if backend == Backend::Fas && !diagram.pins().is_empty() {
                assert!(compile(&code.text).is_ok(), "{}", code.text);
            }
        }
    }
}

/// RC step response converges to the divider value for random R/C —
/// energy cannot appear from nowhere (no overshoot beyond the source).
#[test]
fn rc_transient_bounded_and_settles() {
    let mut rng = Rng::new(0x55);
    for _ in 0..12 {
        let r = 10f64.powf(rng.range(2.0, 6.0));
        let c = 10f64.powf(rng.range(-9.0, -6.0));
        let tau = r * c;
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add_vsource(
            "V1",
            a,
            Circuit::GROUND,
            SourceWave::pulse(
                0.0,
                1.0,
                tau * 0.01,
                tau * 1e-3,
                tau * 1e-3,
                tau * 100.0,
                0.0,
            ),
        );
        ckt.add_resistor("R1", a, b, r).unwrap();
        ckt.add_capacitor("C1", b, Circuit::GROUND, c);
        let result = ckt.tran(&TranSpec::new(8.0 * tau)).unwrap();
        let w = result.voltage_waveform(b).unwrap();
        assert!(w.max() <= 1.0 + 1e-6, "overshoot: {}", w.max());
        assert!(w.min() >= -1e-6, "undershoot: {}", w.min());
        let v_end = *w.values().last().unwrap();
        assert!((v_end - 1.0).abs() < 2e-3, "v_end = {v_end}");
    }
}

/// The behavioural slew block: the output slope never exceeds the
/// configured rates, whatever the drive.
#[test]
fn slew_limit_is_never_violated() {
    let mut rng = Rng::new(0x66);
    for _ in 0..12 {
        let rate = 10f64.powf(rng.range(4.0, 7.0));
        let freq = 10f64.powf(rng.range(3.0, 5.5));
        let spec = gabm_bench::SlewBufferSpec {
            slew_rise: rate,
            slew_fall: rate,
            ..gabm_bench::SlewBufferSpec::default()
        };
        let diagram = spec.diagram().unwrap();
        let code = generate(&diagram, Backend::Fas).unwrap();
        let model = compile(&code.text).unwrap();
        let machine = model.instantiate(&Default::default()).unwrap();
        let mut ckt = Circuit::new();
        let inn = ckt.node("in");
        let out = ckt.node("out");
        ckt.add_behavioral("X", &[inn, out], Box::new(machine))
            .unwrap();
        ckt.add_vsource("V1", inn, Circuit::GROUND, SourceWave::sine(0.0, 1.0, freq));
        ckt.add_resistor("RL", out, Circuit::GROUND, 10e3).unwrap();
        let result = ckt.tran(&TranSpec::new(2.0 / freq)).unwrap();
        let w = result.voltage_waveform(out).unwrap();
        let slope = gabm::numeric::measure::max_slew_rate(&w).unwrap();
        assert!(
            slope <= rate * 1.25,
            "slope {slope:.3e} exceeds limit {rate:.3e}"
        );
    }
}
