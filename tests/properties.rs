//! Property-based tests on the workspace's core invariants.

use gabm::codegen::{generate, Backend};
use gabm::core::check_diagram;
use gabm::core::constructs::{InputStageSpec, OutputStageSpec, SlewRateSpec};
use gabm::core::quantity::Dimension;
use gabm::fas::compile;
use gabm::numeric::{DenseMatrix, LuFactor, SparseLu, TripletBuilder};
use gabm::sim::analysis::tran::TranSpec;
use gabm::sim::circuit::Circuit;
use gabm::sim::devices::SourceWave;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// LU: A·x = b within residual tolerance for any diagonally dominant
    /// matrix, and dense/sparse agree.
    #[test]
    fn lu_solves_diagonally_dominant(
        entries in proptest::collection::vec(-1.0f64..1.0, 16),
        rhs in proptest::collection::vec(-10.0f64..10.0, 4),
    ) {
        let n = 4;
        let mut dense = DenseMatrix::zeros(n, n);
        let mut trip = TripletBuilder::new(n, n);
        for i in 0..n {
            for j in 0..n {
                let v = if i == j { entries[i * n + j] + 4.0 } else { entries[i * n + j] };
                dense[(i, j)] = v;
                trip.push(i, j, v);
            }
        }
        let xd = LuFactor::new(&dense).unwrap().solve(&rhs).unwrap();
        let xs = SparseLu::new(&trip.to_csc()).unwrap().solve(&rhs).unwrap();
        let residual = dense.mul_vec(&xd).unwrap();
        for (r, b) in residual.iter().zip(&rhs) {
            prop_assert!((r - b).abs() < 1e-8);
        }
        for (a, b) in xd.iter().zip(&xs) {
            prop_assert!((a - b).abs() < 1e-8);
        }
    }

    /// Dimension algebra is a commutative group under multiplication.
    #[test]
    fn dimension_group_laws(
        a in (-3i8..3, -3i8..3, -3i8..3, -3i8..3, -3i8..3),
        b in (-3i8..3, -3i8..3, -3i8..3, -3i8..3, -3i8..3),
    ) {
        let da = Dimension::new(a.0, a.1, a.2, a.3, a.4);
        let db = Dimension::new(b.0, b.1, b.2, b.3, b.4);
        prop_assert_eq!(da * db, db * da);
        prop_assert_eq!(da * db / db, da);
        prop_assert_eq!(da / da, Dimension::NONE);
        prop_assert_eq!(da.per_time().times_time(), da);
    }

    /// Pulse waveforms never leave the [v1, v2] envelope.
    #[test]
    fn pulse_stays_in_envelope(
        v1 in -10.0f64..10.0,
        v2 in -10.0f64..10.0,
        t in 0.0f64..10.0,
        delay in 0.0f64..1.0,
        width in 1e-3f64..1.0,
        period in 0.0f64..2.0,
    ) {
        let w = SourceWave::pulse(v1, v2, delay, 0.01, 0.02, width, period);
        let v = w.value_at(t);
        let (lo, hi) = (v1.min(v2), v1.max(v2));
        prop_assert!(v >= lo - 1e-12 && v <= hi + 1e-12, "v = {v}");
    }

    /// Every input stage over a broad parameter range survives the full
    /// pipeline: consistent diagram, generated FAS compiles, and the model
    /// draws the right DC current.
    #[test]
    fn input_stage_pipeline_total(
        rin_exp in 3.0f64..8.0,
        cin_exp in -14.0f64..-9.0,
    ) {
        let rin = 10f64.powf(rin_exp);
        let cin = 10f64.powf(cin_exp);
        let diagram = InputStageSpec::new("in", 1.0 / rin, cin).diagram().unwrap();
        prop_assert!(check_diagram(&diagram).is_consistent());
        let code = generate(&diagram, Backend::Fas).unwrap();
        let model = compile(&code.text).unwrap();
        let machine = model.instantiate(&Default::default()).unwrap();
        let mut ckt = Circuit::new();
        let n = ckt.node("in");
        ckt.add_behavioral("X", &[n], Box::new(machine)).unwrap();
        ckt.add_vsource("V1", n, Circuit::GROUND, SourceWave::dc(1.0));
        let op = ckt.op().unwrap();
        let i = op.current_through(&ckt, "V1").unwrap();
        // Source sees the model's gin as load: i = -1/rin.
        prop_assert!((i + 1.0 / rin).abs() < 1e-3 / rin + 1e-12, "i = {i}");
    }

    /// All three backends generate non-empty code for all three constructs.
    #[test]
    fn all_backends_total_on_constructs(which in 0usize..3, backend_id in 0usize..3) {
        let diagram = match which {
            0 => InputStageSpec::new("in", 1e-6, 5e-12).diagram().unwrap(),
            1 => OutputStageSpec::new("out", 1e-3).with_current_limit(1e-2).diagram().unwrap(),
            _ => SlewRateSpec::new(1e6, 1e6).diagram().unwrap(),
        };
        let backend = [Backend::Fas, Backend::VhdlAms, Backend::Mast][backend_id];
        let code = generate(&diagram, backend).unwrap();
        prop_assert!(!code.text.is_empty());
        // FAS output must always compile — for diagrams with pins; an open
        // fragment like the bare slew-rate block is not a device model.
        if backend == Backend::Fas && !diagram.pins().is_empty() {
            prop_assert!(compile(&code.text).is_ok(), "{}", code.text);
        }
    }
}

proptest! {
    // Transient runs are slower; fewer cases.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// RC step response converges to the divider value for random R/C —
    /// energy cannot appear from nowhere (no overshoot beyond the source).
    #[test]
    fn rc_transient_bounded_and_settles(
        r_exp in 2.0f64..6.0,
        c_exp in -9.0f64..-6.0,
    ) {
        let r = 10f64.powf(r_exp);
        let c = 10f64.powf(c_exp);
        let tau = r * c;
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add_vsource(
            "V1",
            a,
            Circuit::GROUND,
            SourceWave::pulse(0.0, 1.0, tau * 0.01, tau * 1e-3, tau * 1e-3, tau * 100.0, 0.0),
        );
        ckt.add_resistor("R1", a, b, r).unwrap();
        ckt.add_capacitor("C1", b, Circuit::GROUND, c);
        let result = ckt.tran(&TranSpec::new(8.0 * tau)).unwrap();
        let w = result.voltage_waveform(b).unwrap();
        prop_assert!(w.max() <= 1.0 + 1e-6, "overshoot: {}", w.max());
        prop_assert!(w.min() >= -1e-6, "undershoot: {}", w.min());
        let v_end = *w.values().last().unwrap();
        prop_assert!((v_end - 1.0).abs() < 2e-3, "v_end = {v_end}");
    }

    /// The behavioural slew block: the output slope never exceeds the
    /// configured rates, whatever the drive.
    #[test]
    fn slew_limit_is_never_violated(
        rate_exp in 4.0f64..7.0,
        freq_exp in 3.0f64..5.5,
    ) {
        let rate = 10f64.powf(rate_exp);
        let freq = 10f64.powf(freq_exp);
        let spec = gabm_bench::SlewBufferSpec {
            slew_rise: rate,
            slew_fall: rate,
            ..gabm_bench::SlewBufferSpec::default()
        };
        let diagram = spec.diagram().unwrap();
        let code = generate(&diagram, Backend::Fas).unwrap();
        let model = compile(&code.text).unwrap();
        let machine = model.instantiate(&Default::default()).unwrap();
        let mut ckt = Circuit::new();
        let inn = ckt.node("in");
        let out = ckt.node("out");
        ckt.add_behavioral("X", &[inn, out], Box::new(machine)).unwrap();
        ckt.add_vsource("V1", inn, Circuit::GROUND, SourceWave::sine(0.0, 1.0, freq));
        ckt.add_resistor("RL", out, Circuit::GROUND, 10e3).unwrap();
        let result = ckt.tran(&TranSpec::new(2.0 / freq)).unwrap();
        let w = result.voltage_waveform(out).unwrap();
        let slope = gabm::numeric::measure::max_slew_rate(&w).unwrap();
        prop_assert!(slope <= rate * 1.25, "slope {slope:.3e} exceeds limit {rate:.3e}");
    }
}
