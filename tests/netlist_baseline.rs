//! The transistor-level baseline read from a SPICE netlist file must match
//! the programmatically built circuit — same topology, same operating
//! point.

use gabm::models::CmosComparator;
use gabm::sim::circuit::{Circuit, NodeId};
use gabm::sim::devices::SourceWave;
use gabm::sim::netlist::parse_netlist;

const NETLIST: &str = include_str!("../netlists/cmos_comparator.cir");

fn programmatic(vp: f64, vn: f64, strobe: f64) -> (Circuit, NodeId) {
    let mut ckt = Circuit::new();
    let nodes: Vec<NodeId> = CmosComparator::pin_order()
        .iter()
        .map(|p| ckt.node(p))
        .collect();
    CmosComparator::new()
        .instantiate(&mut ckt, "X1", &nodes)
        .expect("instantiates");
    ckt.add_vsource("VDD", nodes[4], Circuit::GROUND, SourceWave::dc(2.5));
    ckt.add_vsource("VSS", nodes[5], Circuit::GROUND, SourceWave::dc(-2.5));
    ckt.add_vsource("VP", nodes[0], Circuit::GROUND, SourceWave::dc(vp));
    ckt.add_vsource("VN", nodes[1], Circuit::GROUND, SourceWave::dc(vn));
    ckt.add_vsource("VST", nodes[2], Circuit::GROUND, SourceWave::dc(strobe));
    let _ = ckt.add_resistor("RL", nodes[3], Circuit::GROUND, 10.0e3);
    (ckt, nodes[3])
}

#[test]
fn netlist_parses_with_eleven_mosfets() {
    let ckt = parse_netlist(NETLIST).expect("netlist parses");
    let mos = ckt
        .devices()
        .iter()
        .filter(|d| d.name().starts_with('M'))
        .count();
    assert_eq!(mos, 11, "the paper's '11 MOS'");
}

#[test]
fn netlist_and_programmatic_agree_at_op() {
    let mut from_file = parse_netlist(NETLIST).expect("netlist parses");
    let out_file = from_file.find_node("out").expect("out node exists");
    let op_file = from_file.op().expect("netlist OP converges");

    let (mut built, out_built) = programmatic(0.3, -0.3, 2.5);
    let op_built = built.op().expect("programmatic OP converges");

    let v_file = op_file.voltage(out_file);
    let v_built = op_built.voltage(out_built);
    // Same decision and close output level (the gate-capacitance defaults
    // differ slightly between the two descriptions).
    assert_eq!(v_file.signum(), v_built.signum());
    assert!(
        (v_file - v_built).abs() < 0.1,
        "file {v_file} vs built {v_built}"
    );
    assert!(v_file > 1.5, "out = {v_file}");
}

#[test]
fn netlist_comparator_decides_both_ways() {
    // Flip the inputs by editing the cards textually — the netlist is the
    // model source here, exactly how a 1994 user would have driven it.
    let flipped = NETLIST
        .replace("VP  inp 0 DC 0.3", "VP  inp 0 DC -0.3")
        .replace("VN  inn 0 DC -0.3", "VN  inn 0 DC 0.3");
    let mut ckt = parse_netlist(&flipped).expect("parses");
    let out = ckt.find_node("out").expect("out exists");
    let op = ckt.op().expect("converges");
    assert!(op.voltage(out) < -1.5, "out = {}", op.voltage(out));
}
