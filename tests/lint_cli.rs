//! End-to-end tests of the `gabm lint` command-line tool: exit codes,
//! output formats, and both input kinds (FAS source, diagram JSON).

use gabm::core::json::Value;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn gabm(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_gabm"))
        .args(args)
        .output()
        .expect("gabm binary runs")
}

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn exit_code(out: &Output) -> i32 {
    out.status.code().expect("no signal")
}

#[test]
fn clean_fas_file_exits_zero() {
    let out = gabm(&["lint", fixture("clean.fas").to_str().unwrap()]);
    assert_eq!(exit_code(&out), 0, "{out:?}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("no diagnostics"));
}

#[test]
fn errors_exit_one_with_code_and_location() {
    let out = gabm(&["lint", fixture("use_before_def.fas").to_str().unwrap()]);
    assert_eq!(exit_code(&out), 1, "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("error[GABM030]"), "{stdout}");
    assert!(stdout.contains("--> 2:"), "{stdout}");
}

#[test]
fn warnings_pass_unless_denied() {
    let path = fixture("unused_variable.fas");
    let path = path.to_str().unwrap();
    let out = gabm(&["lint", path]);
    assert_eq!(exit_code(&out), 0, "warnings alone pass: {out:?}");
    let out = gabm(&["lint", path, "--deny-warnings"]);
    assert_eq!(exit_code(&out), 1, "denied warnings fail: {out:?}");
}

#[test]
fn json_format_is_valid_and_counts_match() {
    let out = gabm(&[
        "lint",
        fixture("const_arith.fas").to_str().unwrap(),
        "--format",
        "json",
    ]);
    assert_eq!(exit_code(&out), 1);
    let v = Value::parse(&String::from_utf8_lossy(&out.stdout)).expect("valid JSON");
    assert_eq!(v.get("errors").and_then(Value::as_f64), Some(3.0));
    let diags = match v.get("diagnostics") {
        Some(Value::Array(items)) => items.clone(),
        other => panic!("diagnostics array expected, got {other:?}"),
    };
    let codes: Vec<_> = diags
        .iter()
        .map(|d| d.get("code").and_then(Value::as_str).unwrap().to_string())
        .collect();
    for code in ["GABM033", "GABM034", "GABM035"] {
        assert_eq!(
            codes.iter().filter(|c| *c == code).count(),
            1,
            "{code} exactly once in {codes:?}"
        );
    }
}

#[test]
fn constructs_lint_clean_via_cli() {
    for name in ["input-stage", "output-stage", "power-supply", "slew-rate"] {
        let out = gabm(&["lint", "--construct", name]);
        assert_eq!(exit_code(&out), 0, "{name}: {out:?}");
        let out = gabm(&["lint", "--construct", name, "--deny-warnings"]);
        assert_eq!(exit_code(&out), 0, "{name} has no warnings either: {out:?}");
    }
}

#[test]
fn diagram_json_input_is_linted() {
    use gabm::core::symbol::PropertyValue;
    use gabm::core::{FunctionalDiagram, SymbolKind};
    let mut d = FunctionalDiagram::new("lim");
    let c = d.add_symbol(SymbolKind::Constant { value: 1.0 });
    let lim = d.add_symbol_with(
        SymbolKind::Limiter,
        &[
            ("min", PropertyValue::Number(5.0)),
            ("max", PropertyValue::Number(1.0)),
        ],
        None,
    );
    d.connect(d.port(c, "out").unwrap(), d.port(lim, "in").unwrap())
        .unwrap();
    let path = Path::new(env!("CARGO_TARGET_TMPDIR")).join("degenerate_limiter.json");
    std::fs::write(&path, gabm::core::json::to_string(&d)).unwrap();
    let out = gabm(&["lint", path.to_str().unwrap()]);
    assert_eq!(exit_code(&out), 1, "{out:?}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("error[GABM011]"));
}

/// Builds the degenerate-limiter diagram used by the dispatch tests.
fn degenerate_diagram_json() -> String {
    use gabm::core::symbol::PropertyValue;
    use gabm::core::{FunctionalDiagram, SymbolKind};
    let mut d = FunctionalDiagram::new("lim");
    let c = d.add_symbol(SymbolKind::Constant { value: 1.0 });
    let lim = d.add_symbol_with(
        SymbolKind::Limiter,
        &[
            ("min", PropertyValue::Number(5.0)),
            ("max", PropertyValue::Number(1.0)),
        ],
        None,
    );
    d.connect(d.port(c, "out").unwrap(), d.port(lim, "in").unwrap())
        .unwrap();
    gabm::core::json::to_string(&d)
}

#[test]
fn uppercase_json_extension_dispatches_as_diagram() {
    // Regression: dispatch used to match the extension case-sensitively,
    // so FILE.JSON fell through to the FAS parser and failed with a bogus
    // lex error instead of being linted as a diagram.
    let path = Path::new(env!("CARGO_TARGET_TMPDIR")).join("UPPERCASE.JSON");
    std::fs::write(&path, degenerate_diagram_json()).unwrap();
    let out = gabm(&["lint", path.to_str().unwrap()]);
    assert_eq!(exit_code(&out), 1, "{out:?}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("error[GABM011]"));
}

#[test]
fn extensionless_diagram_is_sniffed_by_content() {
    // Regression: with no extension at all, the leading '{' identifies a
    // diagram file (no FAS source can start with one).
    let path = Path::new(env!("CARGO_TARGET_TMPDIR")).join("diagram_no_extension");
    std::fs::write(&path, degenerate_diagram_json()).unwrap();
    let out = gabm(&["lint", path.to_str().unwrap()]);
    assert_eq!(exit_code(&out), 1, "{out:?}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("error[GABM011]"));
}

fn cache_stats(args: &[&str], cache_dir: &Path) -> (f64, f64) {
    let out = Command::new(env!("CARGO_BIN_EXE_gabm"))
        .args(args)
        .env("GABM_LINT_CACHE_DIR", cache_dir)
        .output()
        .expect("gabm binary runs");
    let v = Value::parse(&String::from_utf8_lossy(&out.stdout)).expect("valid JSON");
    let cache = v.get("cache").expect("cache stats in JSON output");
    (
        cache.get("passes_run").and_then(Value::as_f64).unwrap(),
        cache.get("passes_skipped").and_then(Value::as_f64).unwrap(),
    )
}

#[test]
fn warm_cache_rerun_skips_every_pass() {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join("cache_warm");
    let _ = std::fs::remove_dir_all(&dir);
    let path = fixture("unused_variable.fas");
    let args = ["lint", path.to_str().unwrap(), "--format", "json"];
    let (cold_run, cold_skipped) = cache_stats(&args, &dir);
    assert!(cold_run >= 4.0, "cold run executes the FAS passes");
    assert_eq!(cold_skipped, 0.0);
    let (warm_run, warm_skipped) = cache_stats(&args, &dir);
    assert_eq!(warm_run, 0.0, "warm re-lint executes nothing");
    assert_eq!(warm_skipped, cold_run, "100% pass-level cache hits");
}

#[test]
fn warm_cache_covers_diagram_and_ir_passes() {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join("cache_construct");
    let _ = std::fs::remove_dir_all(&dir);
    let args = ["lint", "--construct", "input-stage", "--format", "json"];
    let (cold_run, _) = cache_stats(&args, &dir);
    assert!(cold_run >= 11.0, "8 diagram + 3 IR passes run cold");
    let (warm_run, warm_skipped) = cache_stats(&args, &dir);
    assert_eq!((warm_run, warm_skipped), (0.0, cold_run));
}

#[test]
fn no_cache_flag_disables_the_cache() {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join("cache_disabled");
    let _ = std::fs::remove_dir_all(&dir);
    let path = fixture("clean.fas");
    let args = [
        "lint",
        path.to_str().unwrap(),
        "--format",
        "json",
        "--no-cache",
    ];
    let (run1, skipped1) = cache_stats(&args, &dir);
    let (run2, skipped2) = cache_stats(&args, &dir);
    assert_eq!((run1, skipped1), (run2, skipped2));
    assert_eq!(skipped2, 0.0, "--no-cache never replays");
    assert!(run2 >= 4.0);
    assert!(!dir.exists(), "--no-cache writes nothing to disk");
}

#[test]
fn usage_errors_exit_two() {
    let out = gabm(&["lint"]);
    assert_eq!(exit_code(&out), 2, "{out:?}");
    let out = gabm(&["lint", "/nonexistent/file.fas"]);
    assert_eq!(exit_code(&out), 2, "{out:?}");
    let out = gabm(&["frobnicate"]);
    assert_eq!(exit_code(&out), 2, "{out:?}");
}

#[test]
fn list_passes_names_every_layer() {
    let out = gabm(&["lint", "--list-passes"]);
    assert_eq!(exit_code(&out), 0);
    let stdout = String::from_utf8_lossy(&out.stdout);
    for expected in [
        "diagram: net-drivers",
        "ir: ir-use-before-def",
        "fas: fas-dead-branches",
    ] {
        assert!(stdout.contains(expected), "{stdout}");
    }
}
