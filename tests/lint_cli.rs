//! End-to-end tests of the `gabm lint` command-line tool: exit codes,
//! output formats, and both input kinds (FAS source, diagram JSON).

use gabm::core::json::Value;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn gabm(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_gabm"))
        .args(args)
        .output()
        .expect("gabm binary runs")
}

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn exit_code(out: &Output) -> i32 {
    out.status.code().expect("no signal")
}

#[test]
fn clean_fas_file_exits_zero() {
    let out = gabm(&["lint", fixture("clean.fas").to_str().unwrap()]);
    assert_eq!(exit_code(&out), 0, "{out:?}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("no diagnostics"));
}

#[test]
fn errors_exit_one_with_code_and_location() {
    let out = gabm(&["lint", fixture("use_before_def.fas").to_str().unwrap()]);
    assert_eq!(exit_code(&out), 1, "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("error[GABM030]"), "{stdout}");
    assert!(stdout.contains("--> 2:"), "{stdout}");
}

#[test]
fn warnings_pass_unless_denied() {
    let path = fixture("unused_variable.fas");
    let path = path.to_str().unwrap();
    let out = gabm(&["lint", path]);
    assert_eq!(exit_code(&out), 0, "warnings alone pass: {out:?}");
    let out = gabm(&["lint", path, "--deny-warnings"]);
    assert_eq!(exit_code(&out), 1, "denied warnings fail: {out:?}");
}

#[test]
fn json_format_is_valid_and_counts_match() {
    let out = gabm(&[
        "lint",
        fixture("const_arith.fas").to_str().unwrap(),
        "--format",
        "json",
    ]);
    assert_eq!(exit_code(&out), 1);
    let v = Value::parse(&String::from_utf8_lossy(&out.stdout)).expect("valid JSON");
    assert_eq!(v.get("errors").and_then(Value::as_f64), Some(3.0));
    let diags = match v.get("diagnostics") {
        Some(Value::Array(items)) => items.clone(),
        other => panic!("diagnostics array expected, got {other:?}"),
    };
    let codes: Vec<_> = diags
        .iter()
        .map(|d| d.get("code").and_then(Value::as_str).unwrap().to_string())
        .collect();
    for code in ["GABM033", "GABM034", "GABM035"] {
        assert_eq!(
            codes.iter().filter(|c| *c == code).count(),
            1,
            "{code} exactly once in {codes:?}"
        );
    }
}

#[test]
fn constructs_lint_clean_via_cli() {
    for name in ["input-stage", "output-stage", "power-supply", "slew-rate"] {
        let out = gabm(&["lint", "--construct", name]);
        assert_eq!(exit_code(&out), 0, "{name}: {out:?}");
        let out = gabm(&["lint", "--construct", name, "--deny-warnings"]);
        assert_eq!(exit_code(&out), 0, "{name} has no warnings either: {out:?}");
    }
}

#[test]
fn diagram_json_input_is_linted() {
    use gabm::core::symbol::PropertyValue;
    use gabm::core::{FunctionalDiagram, SymbolKind};
    let mut d = FunctionalDiagram::new("lim");
    let c = d.add_symbol(SymbolKind::Constant { value: 1.0 });
    let lim = d.add_symbol_with(
        SymbolKind::Limiter,
        &[
            ("min", PropertyValue::Number(5.0)),
            ("max", PropertyValue::Number(1.0)),
        ],
        None,
    );
    d.connect(d.port(c, "out").unwrap(), d.port(lim, "in").unwrap())
        .unwrap();
    let path = Path::new(env!("CARGO_TARGET_TMPDIR")).join("degenerate_limiter.json");
    std::fs::write(&path, gabm::core::json::to_string(&d)).unwrap();
    let out = gabm(&["lint", path.to_str().unwrap()]);
    assert_eq!(exit_code(&out), 1, "{out:?}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("error[GABM011]"));
}

#[test]
fn usage_errors_exit_two() {
    let out = gabm(&["lint"]);
    assert_eq!(exit_code(&out), 2, "{out:?}");
    let out = gabm(&["lint", "/nonexistent/file.fas"]);
    assert_eq!(exit_code(&out), 2, "{out:?}");
    let out = gabm(&["frobnicate"]);
    assert_eq!(exit_code(&out), 2, "{out:?}");
}

#[test]
fn list_passes_names_every_layer() {
    let out = gabm(&["lint", "--list-passes"]);
    assert_eq!(exit_code(&out), 0);
    let stdout = String::from_utf8_lossy(&out.stdout);
    for expected in [
        "diagram: net-drivers",
        "ir: ir-use-before-def",
        "fas: fas-dead-branches",
    ] {
        assert!(stdout.contains(expected), "{stdout}");
    }
}
