//! Trace output tests: a golden Chrome trace-event file for a fixed
//! 3-step transient (timestamps zeroed, so the golden pins span names,
//! ordering and nesting), a round-trip parse through the in-tree JSON
//! parser, and thread-count invariance of the logical span structure.
//!
//! Regenerate the golden with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test trace_output
//! ```

use gabm::core::json::Value;
use gabm::sim::analysis::tran::TranSpec;
use gabm::sim::devices::SourceWave;
use gabm::sim::Circuit;
use std::sync::Mutex;

/// Trace state is process-global; tests that enable it must not overlap
/// under the parallel test runner.
static TRACE_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Traces a linear resistor-divider transient pinned to exactly three
/// accepted steps (`dt_init = dt_max = tstop/3`, no LTE rejections on a
/// constant solution). Runs on a named thread so the recorded thread
/// name does not depend on the test runner.
fn run_3step(thread_name: &str) -> gabm::trace::Trace {
    gabm::trace::enable();
    std::thread::Builder::new()
        .name(thread_name.into())
        .spawn(|| {
            let mut c = Circuit::new();
            let a = c.node("a");
            let b = c.node("b");
            c.add_vsource("V1", a, Circuit::GROUND, SourceWave::dc(1.0));
            c.add_resistor("R1", a, b, 1.0e3).unwrap();
            c.add_resistor("R2", b, Circuit::GROUND, 1.0e3).unwrap();
            let tstop = 3.0e-6;
            let spec = TranSpec {
                dt_init: Some(tstop / 3.0),
                dt_max: Some(tstop / 3.0),
                ..TranSpec::new(tstop)
            };
            let r = c.tran(&spec).unwrap();
            assert_eq!(
                r.stats.accepted_steps, 3,
                "fixture must take exactly 3 steps"
            );
            assert_eq!(r.stats.rejected_steps, 0, "fixture must reject nothing");
        })
        .unwrap()
        .join()
        .unwrap();
    gabm::trace::finish()
}

#[test]
fn golden_chrome_json_3step_transient() {
    let _g = lock();
    let trace = run_3step("golden-3step");
    let json = trace.to_chrome_json(true);

    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/trace_3step.golden.json"
    );
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(path, &json).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(path)
        .expect("golden file missing — run with UPDATE_GOLDEN=1 to create it");
    assert_eq!(
        json, expected,
        "trace JSON drifted from tests/fixtures/trace_3step.golden.json;\n\
         if the change is intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn three_step_transient_has_expected_span_structure() {
    let _g = lock();
    let trace = run_3step("structure-3step");
    let s = trace.structure();
    assert_eq!(s.get("sim.tran"), Some(&1), "{s:?}");
    assert_eq!(s.get("sim.tran/sim.op"), Some(&1), "{s:?}");
    assert_eq!(s.get("sim.tran/sim.op/sim.newton"), Some(&1), "{s:?}");
    assert_eq!(s.get("sim.tran/sim.tran.step"), Some(&3), "{s:?}");
    assert_eq!(
        s.get("sim.tran/sim.tran.step/sim.newton"),
        Some(&3),
        "{s:?}"
    );
    let counters: std::collections::BTreeMap<&str, u64> = trace
        .counters
        .iter()
        .map(|(k, v)| (k.as_str(), *v))
        .collect();
    assert_eq!(counters.get("sim.tran.accepted"), Some(&3), "{counters:?}");
    assert_eq!(counters.get("sim.tran.rejected"), None, "{counters:?}");
    assert_eq!(
        counters.get("sim.newton.iterations"),
        Some(&4),
        "{counters:?}"
    );
    // Four Newton solves on a small dense system: one full LU each.
    assert_eq!(counters.get("sim.lu.full"), Some(&4), "{counters:?}");
}

#[test]
fn chrome_json_round_trips_through_core_json() {
    let _g = lock();
    let trace = run_3step("roundtrip-3step");
    let json = trace.to_chrome_json(false);
    let v = Value::parse(&json).expect("trace JSON parses with core::json");
    let events = v
        .get("traceEvents")
        .and_then(Value::as_array)
        .expect("traceEvents is an array");
    // process_name + one thread_name per thread + span events + one C
    // event per counter/gauge.
    let expected =
        1 + trace.threads.len() + trace.event_count() + trace.counters.len() + trace.gauges.len();
    assert_eq!(events.len(), expected);
    let mut begins = 0usize;
    let mut ends = 0usize;
    for ev in events {
        let ph = ev
            .get("ph")
            .and_then(Value::as_str)
            .expect("ph is a string");
        assert!(ev.get("name").and_then(Value::as_str).is_some(), "{ev:?}");
        match ph {
            "B" => begins += 1,
            "E" => ends += 1,
            "C" | "M" => {}
            other => panic!("unexpected phase {other:?}"),
        }
    }
    assert_eq!(begins, trace.span_count());
    assert_eq!(begins, ends, "begin/end events must balance");
    // The thread the fixture ran on is named in the metadata.
    assert!(json.contains("roundtrip-3step"), "{json}");
}

/// The logical span structure of a deterministic characterization run
/// must not depend on the worker-pool size: pool jobs are detached
/// roots, so a job inlined on the caller (1 thread) and a job on a
/// worker (4 threads) produce the same paths.
#[test]
fn span_structure_is_thread_count_invariant() {
    use gabm::charac::monte_carlo::{monte_carlo_on, Scatter};
    use gabm::charac::{CharacError, ThreadPool};
    use std::collections::BTreeMap;

    let _g = lock();
    let measure = |p: &BTreeMap<String, f64>| -> Result<f64, CharacError> {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.add_vsource("V1", a, Circuit::GROUND, SourceWave::dc(1.0));
        c.add_resistor("R1", a, b, p["r"])
            .map_err(CharacError::Sim)?;
        c.add_resistor("R2", b, Circuit::GROUND, 1.0e3)
            .map_err(CharacError::Sim)?;
        let op = c.op().map_err(CharacError::Sim)?;
        Ok(op.voltage(b))
    };
    let run = |threads: usize| {
        let mut scatters = BTreeMap::new();
        scatters.insert("r".to_string(), Scatter::new(1.0e3, 0.05));
        let pool = ThreadPool::new(threads);
        gabm::trace::enable();
        monte_carlo_on(&pool, &scatters, 6, 1994, measure).expect("MC runs");
        gabm::trace::finish()
    };
    let serial = run(1);
    let pooled = run(4);
    assert_eq!(
        serial.structure(),
        pooled.structure(),
        "span structure changed with the pool size"
    );
    // Work counters from the deterministic layers agree too; only the
    // scheduling counters (par.steals, par.queue_depth) may differ.
    let sim_counters = |t: &gabm::trace::Trace| -> Vec<(String, u64)> {
        t.counters
            .iter()
            .filter(|(k, _)| k.starts_with("sim."))
            .cloned()
            .collect()
    };
    assert_eq!(sim_counters(&serial), sim_counters(&pooled));
    let jobs = serial.structure()["par.job"];
    assert_eq!(jobs, 6, "one detached par.job root per sample");
}
