//! §3.1 "GBS can be hierarchical": a model assembled from hierarchical
//! symbols must behave identically to the same model assembled flat.

use gabm::codegen::{generate, Backend};
use gabm::core::constructs::{InputStageSpec, OutputStageSpec, SlewRateSpec};
use gabm::core::diagram::{FunctionalDiagram, PortRef, SymbolId};
use gabm::core::hierarchy::as_symbol;
use gabm::fas::compile;
use gabm::sim::analysis::tran::TranSpec;
use gabm::sim::circuit::Circuit;
use gabm::sim::devices::SourceWave;
use gabm_bench::SlewBufferSpec;

/// The slew buffer built with *hierarchical* construct symbols instead of
/// flat merging.
fn hierarchical_buffer(spec: &SlewBufferSpec) -> FunctionalDiagram {
    let mut d = FunctionalDiagram::new("slew_buffer");
    let input = d.add_symbol(as_symbol(
        "input_stage",
        InputStageSpec::new("in", 1.0 / spec.rin, spec.cin)
            .diagram()
            .unwrap(),
    ));
    let slew = d.add_symbol(as_symbol(
        "slew",
        SlewRateSpec::new(spec.slew_rise, spec.slew_fall)
            .diagram()
            .unwrap(),
    ));
    let output = d.add_symbol(as_symbol(
        "output_stage",
        OutputStageSpec::new("out", spec.gout).diagram().unwrap(),
    ));
    // Hierarchical ports follow the inner interface order:
    // input_stage: [v, iin]; slew: [u, y]; output_stage: [vin, vout, iout].
    let v_out = PortRef {
        symbol: input,
        port: 0,
    };
    let u_in = PortRef {
        symbol: slew,
        port: 0,
    };
    let y_out = PortRef {
        symbol: slew,
        port: 1,
    };
    let vin_in = PortRef {
        symbol: output,
        port: 0,
    };
    d.connect(v_out, u_in).unwrap();
    d.connect(y_out, vin_in).unwrap();
    let _ = SymbolId(0); // keep the import honest for older rustc lints
    d
}

fn simulate(diagram: &FunctionalDiagram) -> gabm::numeric::Waveform {
    let code = generate(diagram, Backend::Fas).expect("generates");
    let model = compile(&code.text).expect("compiles");
    let machine = model
        .instantiate(&Default::default())
        .expect("instantiates");
    let mut ckt = Circuit::new();
    let inn = ckt.node("in");
    let out = ckt.node("out");
    ckt.add_behavioral("X", &[inn, out], Box::new(machine))
        .expect("attaches");
    ckt.add_vsource(
        "VIN",
        inn,
        Circuit::GROUND,
        SourceWave::pulse(-1.0, 1.0, 2e-6, 1e-8, 1e-8, 20e-6, 0.0),
    );
    ckt.add_resistor("RL", out, Circuit::GROUND, 10e3)
        .expect("valid resistor");
    let r = ckt.tran(&TranSpec::new(20e-6)).expect("tran runs");
    r.voltage_waveform(out).expect("waveform")
}

#[test]
fn hierarchical_and_flat_buffers_behave_identically() {
    let spec = SlewBufferSpec::default();
    let flat = spec.diagram().expect("flat diagram");
    let hier = hierarchical_buffer(&spec);
    // Codegen flattens the hierarchical one automatically; variable names
    // differ (renumbering) but the electrical behaviour must match.
    let w_flat = simulate(&flat);
    let w_hier = simulate(&hier);
    let rms = w_flat.rms_difference(&w_hier).expect("comparable");
    assert!(rms < 1e-9, "hierarchy changed behaviour: RMS {rms}");
    // And the response is genuinely slew-limited (sanity).
    let slope = gabm::numeric::measure::max_rise_rate(&w_flat).expect("measurable");
    assert!(
        slope <= spec.slew_rise * 1.2,
        "slope {slope:.3e} vs limit {:.3e}",
        spec.slew_rise
    );
}

#[test]
fn hierarchical_codegen_compiles_via_auto_flatten() {
    let spec = SlewBufferSpec::default();
    let hier = hierarchical_buffer(&spec);
    let code = generate(&hier, Backend::Fas).expect("auto-flatten generates");
    assert!(code.text.contains("state.delay("));
    assert!(compile(&code.text).is_ok());
    // The other backends flatten identically.
    assert!(generate(&hier, Backend::VhdlAms).is_ok());
    assert!(generate(&hier, Backend::Mast).is_ok());
}
