//! End-to-end pipeline tests: diagram -> FAS code -> compiled model ->
//! coupled electrical simulation (the paper's Fig. 1 flow).

use gabm::codegen::{generate, Backend};
use gabm::core::constructs::InputStageSpec;
use gabm::fas::compile;
use gabm::sim::analysis::tran::TranSpec;
use gabm::sim::circuit::Circuit;
use gabm::sim::devices::SourceWave;
use std::collections::BTreeMap;

/// The behavioural input stage must load a source exactly like the real
/// R || C it models: same node voltage within tolerance over a transient.
#[test]
fn behavioural_input_stage_matches_rc() {
    let rin = 1.0e6;
    let cin = 10.0e-12;
    // Behavioural version.
    let diagram = InputStageSpec::new("in", 1.0 / rin, cin).diagram().unwrap();
    let code = generate(&diagram, Backend::Fas).unwrap();
    let model = compile(&code.text).unwrap();
    let machine = model.instantiate(&BTreeMap::new()).unwrap();

    let mut ckt_b = Circuit::new();
    let n_b = ckt_b.node("in");
    let src_b = ckt_b.node("src");
    ckt_b.add_vsource(
        "V1",
        src_b,
        Circuit::GROUND,
        SourceWave::pulse(0.0, 1.0, 1e-6, 1e-7, 1e-7, 1.0, 0.0),
    );
    ckt_b.add_resistor("RS", src_b, n_b, 1.0e6).unwrap();
    ckt_b
        .add_behavioral("XIN", &[n_b], Box::new(machine))
        .unwrap();
    let tran_b = ckt_b.tran(&TranSpec::new(30e-6)).unwrap();
    let w_b = tran_b.voltage_waveform(n_b).unwrap();

    // Reference: the explicit R || C.
    let mut ckt_r = Circuit::new();
    let n_r = ckt_r.node("in");
    let src_r = ckt_r.node("src");
    ckt_r.add_vsource(
        "V1",
        src_r,
        Circuit::GROUND,
        SourceWave::pulse(0.0, 1.0, 1e-6, 1e-7, 1e-7, 1.0, 0.0),
    );
    ckt_r.add_resistor("RS", src_r, n_r, 1.0e6).unwrap();
    ckt_r
        .add_resistor("RIN", n_r, Circuit::GROUND, rin)
        .unwrap();
    ckt_r.add_capacitor("CIN", n_r, Circuit::GROUND, cin);
    let tran_r = ckt_r.tran(&TranSpec::new(30e-6)).unwrap();
    let w_r = tran_r.voltage_waveform(n_r).unwrap();

    let rms = w_b.rms_difference(&w_r).unwrap();
    assert!(rms < 0.02, "behavioural vs reference RMS difference {rms}");
    // End value: divider 1M/1M = 0.5.
    let v_end = *w_b.values().last().unwrap();
    assert!((v_end - 0.5).abs() < 0.01, "v_end = {v_end}");
}
