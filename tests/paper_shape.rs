//! Shape assertions for the paper's evaluation (E8 Fig. 7 and E9 timing):
//! the behavioural comparator must agree with the transistor circuit on
//! every strobed decision, and must cost less to simulate.

use gabm::sim::analysis::tran::TranSpec;
use gabm_bench::{behavioural_comparator_circuit, cmos_comparator_circuit, ComparatorStimulus};

#[test]
fn fig7_decisions_agree_and_behavioural_is_cheaper() {
    let stim = ComparatorStimulus::default();
    let tstop = 40.0e-6;

    let (mut beh, bn) = behavioural_comparator_circuit(&stim).unwrap();
    let rb = beh.tran(&TranSpec::new(tstop)).unwrap();
    let w_beh = rb.voltage_waveform(bn[3]).unwrap();

    let (mut cmos, cn) = cmos_comparator_circuit(&stim).unwrap();
    let rc = cmos.tran(&TranSpec::new(tstop)).unwrap();
    let w_cmos = rc.voltage_waveform(cn[3]).unwrap();

    let mut agree = 0;
    let mut total = 0;
    for (lo, hi) in stim.strobe_windows(tstop) {
        let t = 0.5 * (lo + hi);
        let vb = w_beh.value_at(t).unwrap();
        let vc = w_cmos.value_at(t).unwrap();
        if vb.abs() > 0.5 && vc.abs() > 0.5 {
            total += 1;
            if vb.signum() == vc.signum() {
                agree += 1;
            }
        }
    }
    assert!(total >= 3, "too few comparable strobe windows ({total})");
    assert_eq!(agree, total, "only {agree}/{total} decisions agree");

    // E9: the behavioural model needs less Newton work (the paper's 4.9 s
    // vs 15.2 s in machine-independent terms).
    let work_beh = rb.stats.newton_iterations * beh.n_unknowns();
    let work_cmos = rc.stats.newton_iterations * cmos.n_unknowns();
    assert!(
        work_cmos as f64 > 1.5 * work_beh as f64,
        "expected >=1.5x work ratio, got beh={work_beh}, cmos={work_cmos}"
    );
}

/// The §4 note: behavioural models full of `if…then…else` discontinuities
/// must not break the transient engine — the run completes and every
/// accepted point is finite.
#[test]
fn discontinuities_do_not_break_convergence() {
    let stim = ComparatorStimulus {
        input_freq: 100.0e3,
        strobe_period: 5.0e-6,
        strobe_width: 2.0e-6,
        ..ComparatorStimulus::default()
    };
    let (mut beh, bn) = behavioural_comparator_circuit(&stim).unwrap();
    let r = beh.tran(&TranSpec::new(30.0e-6)).unwrap();
    let w = r.voltage_waveform(bn[3]).unwrap();
    assert!(w.values().iter().all(|v| v.is_finite()));
    assert!(r.stats.accepted_steps > 50);
}
