//! The §2.2 workflow: "Symbols … are interconnected using an existing
//! schematic entry tool." Draw Fig. 2 on a drawing sheet, extract the
//! connectivity, and the generated code must be the same §4.2 listing the
//! construct-built diagram produces.

use gabm::codegen::{generate, Backend};
use gabm::core::check_diagram;
use gabm::core::constructs::InputStageSpec;
use gabm::core::quantity::Dimension;
use gabm::core::symbol::{PropertyValue, SymbolKind};
use gabm::schematic::{Point, Sheet};

/// Draws the Fig. 2 input stage manually, placing symbols in the same order
/// as [`InputStageSpec`] so the generated variable names line up with the
/// paper.
fn draw_input_stage() -> Sheet {
    let mut sheet = Sheet::new("input_stage_in");
    // Same id order as the construct: pin(1), probe(2), generator(3),
    // differentiator(4), gain-cin(5), gain-gin(6), adder(7). Wires touching
    // any shared grid point merge (T junctions), so each net gets its own
    // corridor.
    let _pin = sheet.place(SymbolKind::Pin { name: "in".into() }, Point::new(0, 30)); // pin port (0,32)
    let _probe = sheet.place(
        SymbolKind::Probe {
            quantity: Dimension::VOLTAGE,
        },
        Point::new(10, 30), // pin (10,32), out (12,30)
    );
    let _gen = sheet.place(
        SymbolKind::Generator {
            quantity: Dimension::CURRENT,
        },
        Point::new(40, 30), // pin (40,32), in (38,30)
    );
    let _ddt = sheet.place(SymbolKind::Differentiator, Point::new(20, 0)); // in (18,0), out (22,0)
    let _gain_c = sheet.place_with(
        SymbolKind::Gain,
        Point::new(30, 0), // in (28,0), out (32,0)
        &[("a", PropertyValue::Param("cin".into()))],
        Some("Cin"),
    );
    let _gain_g = sheet.place_with(
        SymbolKind::Gain,
        Point::new(20, 15), // in (18,15), out (22,15)
        &[("a", PropertyValue::Param("gin".into()))],
        Some("Gin"),
    );
    let _add = sheet.place(
        SymbolKind::Adder {
            signs: vec![true, true],
        },
        Point::new(40, 8), // in0 (38,8), in1 (38,9), out (42,8)
    );
    // Pin bus along y = 32 (bidirectional net: pin, probe, generator).
    sheet.wire(Point::new(0, 32), Point::new(10, 32));
    sheet.wire(Point::new(10, 32), Point::new(40, 32));
    // Probe fan-out riser at x = 12 with branches into ddt and gain_g.
    sheet.wire(Point::new(12, 30), Point::new(12, 0));
    sheet.wire(Point::new(12, 0), Point::new(18, 0));
    sheet.wire(Point::new(12, 15), Point::new(18, 15));
    // ddt -> gain_c along y = 0.
    sheet.wire(Point::new(22, 0), Point::new(28, 0));
    // gain_c -> adder.in0 (corridor x = 38 ends exactly on in0).
    sheet.wire(Point::new(32, 0), Point::new(38, 0));
    sheet.wire(Point::new(38, 0), Point::new(38, 8));
    // gain_g -> adder.in1 via corridor x = 30 / y = 9.
    sheet.wire(Point::new(22, 15), Point::new(30, 15));
    sheet.wire(Point::new(30, 15), Point::new(30, 9));
    sheet.wire(Point::new(30, 9), Point::new(38, 9));
    // adder -> generator around the right side.
    sheet.wire(Point::new(42, 8), Point::new(46, 8));
    sheet.wire(Point::new(46, 8), Point::new(46, 30));
    sheet.wire(Point::new(46, 30), Point::new(38, 30));
    sheet
}

#[test]
fn drawn_diagram_matches_construct_codegen() {
    let sheet = draw_input_stage();
    let mut drawn = sheet.extract().expect("connectivity extracts");
    // The sheet carries no parameter declarations; add them as the card
    // would.
    drawn.add_parameter("gin", 1.0e-6, Dimension::CONDUCTANCE);
    drawn.add_parameter("cin", 5.0e-12, Dimension::CAPACITANCE);
    let report = check_diagram(&drawn);
    assert!(report.is_consistent(), "{:?}", report.diagnostics);

    let from_sheet = generate(&drawn, Backend::Fas).expect("generates");
    let from_construct = generate(
        &InputStageSpec::new("in", 1.0e-6, 5.0e-12)
            .diagram()
            .unwrap(),
        Backend::Fas,
    )
    .expect("generates");
    // Model name + body identical; the drawn one came through geometry and
    // junction extraction instead of the programmatic builder.
    assert_eq!(from_sheet.text, from_construct.text);
}

#[test]
fn probe_fanout_via_t_junction() {
    // The probe output feeds both the differentiator and the gin gain: the
    // wire router must have merged those into one net.
    let sheet = draw_input_stage();
    let drawn = sheet.extract().unwrap();
    let probe_out = drawn.port(gabm::core::diagram::SymbolId(2), "out").unwrap();
    let net = drawn.net_of(probe_out).expect("probe out is wired");
    assert_eq!(net.ports.len(), 3, "probe out should fan out to 2 loads");
}
