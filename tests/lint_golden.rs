//! Golden tests for `gabm-lint`: one defective fixture per diagnostic
//! code, each triggering its code exactly once with a stable code string
//! and location, plus the regression guarantee that the paper's own
//! constructs (§3.3) and generated FAS listing (§4.2) lint clean.

use gabm::codegen::{generate, Backend, CodegenError};
use gabm::core::constructs::{InputStageSpec, OutputStageSpec, PowerSupplySpec, SlewRateSpec};
use gabm::core::symbol::PropertyValue;
use gabm::core::{Dimension, FunctionalDiagram, SymbolKind};
use gabm::lint::{lint_diagram, lint_fas_source, Code, Diagnostic, Location, Severity};

fn only(diags: &[Diagnostic], code: Code) -> &Diagnostic {
    let hits: Vec<_> = diags.iter().filter(|d| d.code == code).collect();
    assert_eq!(hits.len(), 1, "{code} expected exactly once in {diags:?}");
    hits[0]
}

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(path).expect("fixture readable")
}

// ---------------------------------------------------------------- diagram

#[test]
fn golden_gabm001_duplicate_net_driver() {
    // Two constants on the same net: violates the §3.2 rule that "each net
    // must be driven by exactly one output pin of a GBS". The builder API
    // refuses such a connection outright, so the fixture arrives the way a
    // real one would — from a serialized diagram file.
    let mut d = FunctionalDiagram::new("dup");
    let c1 = d.add_symbol(SymbolKind::Constant { value: 1.0 });
    let c2 = d.add_symbol(SymbolKind::Constant { value: 2.0 });
    let g = d.add_symbol_with(SymbolKind::Gain, &[("a", PropertyValue::Number(1.0))], None);
    let _ = c2;
    d.connect(d.port(c1, "out").unwrap(), d.port(g, "in").unwrap())
        .unwrap();
    // Splice the second constant's output into the net's port list.
    let json = gabm::core::json::to_string(&d);
    let patched = json.replacen("\"ports\":[", "\"ports\":[{\"symbol\":1,\"port\":0},", 1);
    assert_ne!(json, patched, "fixture patch must apply");
    let d: FunctionalDiagram = gabm::core::json::from_str(&patched).unwrap();
    let diags = lint_diagram(&d);
    let diag = only(&diags, Code::MultipleDrivers);
    assert_eq!(diag.severity, Severity::Error);
    assert!(diag.net().is_some(), "GABM001 locates the net: {diag:?}");
}

#[test]
fn golden_gabm003_dangling_input() {
    let mut d = FunctionalDiagram::new("dangling");
    d.add_symbol_with(SymbolKind::Gain, &[("a", PropertyValue::Number(2.0))], None);
    let diags = lint_diagram(&d);
    let diag = only(&diags, Code::UnconnectedInput);
    assert_eq!(diag.severity, Severity::Error);
    assert!(
        matches!(diag.location, Location::Port { .. }),
        "GABM003 locates the port: {diag:?}"
    );
}

#[test]
fn golden_gabm004_unconnected_output_removal_fix() {
    // A probe whose output dangles: GABM004 fires on the port, and —
    // because every output of the symbol is dead while its pin side is
    // connected — it carries a remove-symbol fix. (A fully disconnected
    // symbol is GABM005's territory and must NOT get the GABM004 fix.)
    let mut d = FunctionalDiagram::new("dangling_out");
    let pin = d.add_symbol(SymbolKind::Pin { name: "in".into() });
    let probe = d.add_symbol(SymbolKind::Probe {
        quantity: Dimension::VOLTAGE,
    });
    d.connect(d.port(pin, "pin").unwrap(), d.port(probe, "pin").unwrap())
        .unwrap();
    let diags = lint_diagram(&d);
    let diag = only(&diags, Code::UnconnectedOutput);
    assert_eq!(diag.severity, Severity::Warning);
    assert!(
        matches!(diag.location, Location::Port { .. }),
        "GABM004 locates the port: {diag:?}"
    );
    let fix = diag.fix.as_ref().expect("GABM004 carries a removal fix");
    assert!(fix.label.contains("remove"), "{fix:?}");

    // Same probe, nothing connected at all: the removal fix belongs to
    // GABM005, so GABM004 stays fixless.
    let mut d = FunctionalDiagram::new("fully_dangling");
    d.add_symbol(SymbolKind::Probe {
        quantity: Dimension::VOLTAGE,
    });
    let diags = lint_diagram(&d);
    assert!(only(&diags, Code::UnconnectedOutput).fix.is_none());
    assert!(only(&diags, Code::DisconnectedSymbol).fix.is_some());
}

#[test]
fn golden_gabm007_dimension_mix() {
    // Voltage probe wired straight into a current generator — the paper's
    // "oil and water will not mix".
    let mut d = FunctionalDiagram::new("mix");
    let pin = d.add_symbol(SymbolKind::Pin { name: "in".into() });
    let probe = d.add_symbol(SymbolKind::Probe {
        quantity: Dimension::VOLTAGE,
    });
    let gen = d.add_symbol(SymbolKind::Generator {
        quantity: Dimension::CURRENT,
    });
    d.connect(d.port(pin, "pin").unwrap(), d.port(probe, "pin").unwrap())
        .unwrap();
    d.connect(d.port(pin, "pin").unwrap(), d.port(gen, "pin").unwrap())
        .unwrap();
    d.connect(d.port(probe, "out").unwrap(), d.port(gen, "in").unwrap())
        .unwrap();
    let diags = lint_diagram(&d);
    let diag = only(&diags, Code::DimensionConflict);
    assert_eq!(diag.severity, Severity::Error);
    assert!(
        !diag.notes.is_empty(),
        "GABM007 explains the inference chain: {diag:?}"
    );
}

#[test]
fn golden_gabm008_algebraic_loop() {
    let mut d = FunctionalDiagram::new("loop");
    let g1 = d.add_symbol_with(SymbolKind::Gain, &[("a", PropertyValue::Number(1.0))], None);
    let g2 = d.add_symbol_with(SymbolKind::Gain, &[("a", PropertyValue::Number(1.0))], None);
    d.connect(d.port(g1, "out").unwrap(), d.port(g2, "in").unwrap())
        .unwrap();
    d.connect(d.port(g2, "out").unwrap(), d.port(g1, "in").unwrap())
        .unwrap();
    let diags = lint_diagram(&d);
    let diag = only(&diags, Code::AlgebraicLoop);
    assert_eq!(diag.severity, Severity::Error);
    let path = diag
        .notes
        .iter()
        .find(|n| n.starts_with("cycle path:"))
        .expect("full cycle path note");
    assert_eq!(path.matches("->").count(), 2, "path: {path}");
}

#[test]
fn golden_gabm011_degenerate_limiter() {
    let mut d = FunctionalDiagram::new("lim");
    let c = d.add_symbol(SymbolKind::Constant { value: 1.0 });
    let lim = d.add_symbol_with(
        SymbolKind::Limiter,
        &[
            ("min", PropertyValue::Number(5.0)),
            ("max", PropertyValue::Number(1.0)),
        ],
        None,
    );
    d.connect(d.port(c, "out").unwrap(), d.port(lim, "in").unwrap())
        .unwrap();
    let diags = lint_diagram(&d);
    let diag = only(&diags, Code::DegenerateLimiter);
    assert_eq!(diag.severity, Severity::Error);
    assert_eq!(diag.symbol(), Some(lim));
}

// -------------------------------------------------------------------- FAS

#[test]
fn golden_gabm030_use_before_def() {
    let diags = lint_fas_source(&fixture("use_before_def.fas")).unwrap();
    let diag = only(&diags, Code::FasUseBeforeDef);
    assert_eq!(diag.severity, Severity::Error);
    assert!(
        matches!(diag.location, Location::Source { line: 2, .. }),
        "located at the offending make: {diag:?}"
    );
}

#[test]
fn golden_gabm031_unused_variable() {
    let diags = lint_fas_source(&fixture("unused_variable.fas")).unwrap();
    let diag = only(&diags, Code::FasUnusedVariable);
    assert_eq!(diag.severity, Severity::Warning);
    assert!(diag.message.contains("'scratch'"));
    assert!(matches!(diag.location, Location::Source { line: 3, .. }));
}

#[test]
fn golden_gabm032_dead_branch() {
    let diags = lint_fas_source(&fixture("dead_branch.fas")).unwrap();
    let diag = only(&diags, Code::FasDeadBranch);
    assert_eq!(diag.severity, Severity::Warning);
    assert!(matches!(diag.location, Location::Source { line: 3, .. }));
}

#[test]
fn golden_gabm033_034_035_const_arithmetic() {
    let diags = lint_fas_source(&fixture("const_arith.fas")).unwrap();
    let div = only(&diags, Code::FasDivisionByZero);
    assert!(matches!(div.location, Location::Source { line: 2, .. }));
    let dom = only(&diags, Code::FasDomainError);
    assert!(matches!(dom.location, Location::Source { line: 3, .. }));
    let lim = only(&diags, Code::FasDegenerateLimit);
    assert!(matches!(lim.location, Location::Source { line: 4, .. }));
}

// ------------------------------------------------------------------ fixes

#[test]
fn golden_fix_attachment_matches_declared_availability() {
    // Every code that declares an autofix must attach one on its golden
    // fixture, and codes without a safe remedy must not carry a fix.
    let mut d = FunctionalDiagram::new("lim");
    let c = d.add_symbol(SymbolKind::Constant { value: 1.0 });
    let lim = d.add_symbol_with(
        SymbolKind::Limiter,
        &[
            ("min", PropertyValue::Number(5.0)),
            ("max", PropertyValue::Number(1.0)),
        ],
        None,
    );
    d.connect(d.port(c, "out").unwrap(), d.port(lim, "in").unwrap())
        .unwrap();
    let diags = lint_diagram(&d);
    let fix = only(&diags, Code::DegenerateLimiter)
        .fix
        .as_ref()
        .expect("GABM011 carries a swap fix");
    assert!(fix.label.contains("swap"), "{fix:?}");

    let diags = lint_fas_source(&fixture("unused_variable.fas")).unwrap();
    assert!(only(&diags, Code::FasUnusedVariable).fix.is_some());

    let diags = lint_fas_source(&fixture("dead_branch.fas")).unwrap();
    assert!(only(&diags, Code::FasDeadBranch).fix.is_some());

    let diags = lint_fas_source(&fixture("const_arith.fas")).unwrap();
    assert!(only(&diags, Code::FasDegenerateLimit).fix.is_some());
    assert!(
        only(&diags, Code::FasDivisionByZero).fix.is_none(),
        "no mechanical remedy for a real arithmetic error"
    );
    assert!(only(&diags, Code::FasDomainError).fix.is_none());

    let diags = lint_fas_source(&fixture("use_before_def.fas")).unwrap();
    assert!(only(&diags, Code::FasUseBeforeDef).fix.is_none());

    // GABM004 declares an autofix (attached only when the symbol is
    // fully dead — covered by its own golden above).
    assert!(Code::UnconnectedOutput.has_autofix());
}

// ------------------------------------------------------- clean regressions

#[test]
fn paper_constructs_lint_clean() {
    let constructs: Vec<(&str, FunctionalDiagram)> = vec![
        (
            "input-stage",
            InputStageSpec::new("in", 1.0e-6, 5.0e-12)
                .diagram()
                .unwrap(),
        ),
        (
            "output-stage",
            OutputStageSpec::new("out", 1.0e-3).diagram().unwrap(),
        ),
        (
            "power-supply",
            PowerSupplySpec::new("vdd", "vss", 1.0e-5, 1.0e-6, 2)
                .diagram()
                .unwrap(),
        ),
        (
            "slew-rate",
            SlewRateSpec::new(2.0e6, 2.0e6).diagram().unwrap(),
        ),
    ];
    for (name, d) in constructs {
        let diags = lint_diagram(&d);
        assert!(diags.is_empty(), "{name} must lint clean: {diags:?}");
    }
}

#[test]
fn generated_input_stage_listing_lints_clean() {
    // The §4.2 FAS listing, generated from the input-stage diagram, must
    // survive its own toolchain's source analysis with zero diagnostics.
    let d = InputStageSpec::new("in", 1.0e-6, 5.0e-12)
        .diagram()
        .unwrap();
    let code = generate(&d, Backend::Fas).unwrap();
    let diags = lint_fas_source(&code.text).unwrap();
    assert!(diags.is_empty(), "generated listing: {diags:?}");
}

#[test]
fn clean_fixture_lints_clean() {
    let diags = lint_fas_source(&fixture("clean.fas")).unwrap();
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn codegen_refuses_diagram_with_lint_errors() {
    // Any diagram-level lint error must make generation return Err — never
    // panic, never emit code.
    let mut d = FunctionalDiagram::new("bad");
    let c = d.add_symbol(SymbolKind::Constant { value: 1.0 });
    let lim = d.add_symbol_with(
        SymbolKind::Limiter,
        &[
            ("min", PropertyValue::Number(5.0)),
            ("max", PropertyValue::Number(1.0)),
        ],
        None,
    );
    d.connect(d.port(c, "out").unwrap(), d.port(lim, "in").unwrap())
        .unwrap();
    for backend in [Backend::Fas, Backend::VhdlAms, Backend::Mast] {
        match generate(&d, backend) {
            Err(CodegenError::Inconsistent(report)) => {
                assert!(report.error_count() > 0);
            }
            other => panic!("expected Inconsistent, got {other:?}"),
        }
    }
}
