//! Higher-order characterization flows on the library models: response
//! time, frequency response, Monte-Carlo parameter scatter.

use gabm::charac::monte_carlo::{monte_carlo, Scatter};
use gabm::charac::{rigs, Bias};
use gabm::codegen::{generate, Backend};
use gabm::core::constructs::InputStageSpec;
use gabm::fas::compile;
use gabm::models::comparator::ComparatorSpec;
use gabm::models::dut::fas_dut;
use std::collections::BTreeMap;

/// Strobe-to-decision delay of the behavioural comparator: dominated by the
/// slew limit, so it must scale inversely with the slew rate.
#[test]
fn comparator_response_time_tracks_slew_rate() {
    let mut delays = Vec::new();
    for slew in [1.0e6, 4.0e6] {
        let spec = ComparatorSpec {
            slew_rise: slew,
            slew_fall: slew,
            ..ComparatorSpec::default()
        };
        let model = compile(&spec.fas_code().unwrap()).unwrap();
        let dut = fas_dut(model, BTreeMap::new()).unwrap();
        let bias = [
            ("inp", Bias::Voltage(0.3)),
            ("inn", Bias::Voltage(-0.3)),
            ("outp", Bias::Open),
            ("outn", Bias::Open),
            ("vdd", Bias::Voltage(2.5)),
            ("vss", Bias::Voltage(-2.5)),
        ];
        let x =
            rigs::response_time(&dut, "strobe", "outp", &bias, -1.0, 1.0, 1.0, 40.0e-6).unwrap();
        // Slewing from 0 to the +1 V threshold takes ~1/slew seconds.
        let expect = 1.0 / slew;
        assert!(
            (x.value - expect).abs() / expect < 0.5,
            "slew {slew}: t = {:.3e}, expected ~{expect:.3e}",
            x.value
        );
        delays.push(x.value);
    }
    // 4x the slew rate ⇒ roughly a quarter of the delay.
    let ratio = delays[0] / delays[1];
    assert!((2.5..6.0).contains(&ratio), "delay ratio {ratio}");
}

/// The behavioural input stage is a one-pole RC from the driving source's
/// point of view; its measured corner tracks 1/(2π·(Rs ∥ Rin)·Cin).
#[test]
fn input_stage_frequency_response_has_rc_pole() {
    // Use a big Cin so the pole lands in a cheap-to-simulate band.
    let rin = 1.0e4;
    let cin = 1.0e-6;
    let diagram = InputStageSpec::new("in", 1.0 / rin, cin).diagram().unwrap();
    let code = generate(&diagram, Backend::Fas).unwrap();
    let model = compile(&code.text).unwrap();
    // Wrap the DUT behind a series resistor: measure across the model.
    let dut = gabm::charac::FnDut::new(&["drive", "in"], move |ckt, name, nodes| {
        let machine = model
            .instantiate(&BTreeMap::new())
            .expect("defaults instantiate");
        ckt.add_resistor(&format!("{name}_RS"), nodes[0], nodes[1], rin)?;
        ckt.add_behavioral(&format!("{name}_X"), &[nodes[1]], Box::new(machine))
    });
    // Pole of the loaded divider: f = 1/(2π (Rs∥Rin) C) = 1/(2π·5k·1µ) ≈ 31.8 Hz.
    let f_pole = 1.0 / (2.0 * std::f64::consts::PI * (rin / 2.0) * cin);
    let pts = rigs::frequency_response(
        &dut,
        "drive",
        "in",
        &[],
        &[f_pole / 20.0, f_pole, f_pole * 20.0],
        1.0,
        3,
    )
    .unwrap();
    // Low frequency: divider 0.5; at the pole: 0.5/√2; high: rolled off.
    assert!((pts[0].gain - 0.5).abs() < 0.02, "LF gain {}", pts[0].gain);
    assert!(
        (pts[1].gain - 0.3536).abs() < 0.03,
        "corner gain {}",
        pts[1].gain
    );
    assert!(pts[2].gain < 0.06, "HF gain {}", pts[2].gain);
}

/// Monte-Carlo over the input-stage conductance: the extracted input
/// resistance distribution mirrors the parameter scatter.
#[test]
fn monte_carlo_rin_scatter() {
    let diagram = InputStageSpec::new("in", 1.0e-6, 5.0e-12)
        .diagram()
        .unwrap();
    let code = generate(&diagram, Backend::Fas).unwrap();
    let model = compile(&code.text).unwrap();
    let mut scatters = BTreeMap::new();
    scatters.insert("gin".to_string(), Scatter::new(1.0e-6, 0.05));
    let (dist, failures) = monte_carlo(&scatters, 24, 1994, |params| {
        let mut overrides = BTreeMap::new();
        overrides.insert("gin".to_string(), params["gin"]);
        let dut = fas_dut(model.clone(), overrides)
            .map_err(|e| gabm::charac::CharacError::BadRig(e.to_string()))?;
        Ok(rigs::input_resistance(&dut, "in", &[])?.value)
    })
    .unwrap();
    assert_eq!(failures, 0);
    assert!(
        (dist.mean - 1.0e6).abs() / 1.0e6 < 0.05,
        "mean rin {}",
        dist.mean
    );
    // 5 % conductance scatter ⇒ ~5 % resistance scatter (first order).
    assert!(
        dist.std_dev / dist.mean > 0.02 && dist.std_dev / dist.mean < 0.12,
        "rel std {}",
        dist.std_dev / dist.mean
    );
}
