//! End-to-end tests of `gabm compile` and the general CLI surface
//! (`--version`, `help <cmd>`, named unknown-flag errors).

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn gabm(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_gabm"))
        .args(args)
        .output()
        .expect("gabm binary runs")
}

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn exit_code(out: &Output) -> i32 {
    out.status.code().expect("no signal")
}

#[test]
fn compile_prints_program_summary() {
    let out = gabm(&["compile", fixture("clean.fas").to_str().unwrap()]);
    assert_eq!(exit_code(&out), 0, "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("clean: 2 pins"), "{stdout}");
    assert!(stdout.contains("ops in"), "{stdout}");
}

#[test]
fn compile_disasm_lists_bytecode() {
    let out = gabm(&[
        "compile",
        fixture("clean.fas").to_str().unwrap(),
        "--disasm",
    ]);
    assert_eq!(exit_code(&out), 0, "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("; model clean"), "{stdout}");
    assert!(stdout.contains("<- pin in"), "{stdout}");
    assert!(stdout.contains("impose out"), "{stdout}");
}

#[test]
fn compile_reports_parse_errors() {
    let dir = std::env::temp_dir().join("gabm_compile_cli_bad");
    std::fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("bad.fas");
    std::fs::write(&bad, "model broken pin (\n").unwrap();
    let out = gabm(&["compile", bad.to_str().unwrap()]);
    assert_eq!(exit_code(&out), 2, "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("bad.fas"), "{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn compile_missing_file_exits_two() {
    let out = gabm(&["compile", "/nonexistent/model.fas"]);
    assert_eq!(exit_code(&out), 2, "{out:?}");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("cannot read"),
        "{out:?}"
    );
}

#[test]
fn version_flag_prints_version() {
    for flag in ["--version", "-V"] {
        let out = gabm(&[flag]);
        assert_eq!(exit_code(&out), 0, "{out:?}");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            stdout.starts_with("gabm ") && stdout.contains(env!("CARGO_PKG_VERSION")),
            "{stdout}"
        );
    }
}

#[test]
fn help_subcommand_shows_command_usage() {
    let out = gabm(&["help", "compile"]);
    assert_eq!(exit_code(&out), 0, "{out:?}");
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("--disasm"),
        "{out:?}"
    );
    let out = gabm(&["help", "lint"]);
    assert_eq!(exit_code(&out), 0, "{out:?}");
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("--list-passes"),
        "{out:?}"
    );
    let out = gabm(&["help"]);
    assert_eq!(exit_code(&out), 0, "{out:?}");
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("commands:"),
        "{out:?}"
    );
    let out = gabm(&["help", "frobnicate"]);
    assert_eq!(exit_code(&out), 2, "{out:?}");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("unknown command 'frobnicate'"),
        "{out:?}"
    );
}

#[test]
fn threads_flag_is_accepted_anywhere() {
    // Before the subcommand...
    let out = gabm(&[
        "--threads",
        "2",
        "compile",
        fixture("clean.fas").to_str().unwrap(),
    ]);
    assert_eq!(exit_code(&out), 0, "{out:?}");
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("clean: 2 pins"),
        "{out:?}"
    );
    // ...and after it.
    let out = gabm(&[
        "compile",
        fixture("clean.fas").to_str().unwrap(),
        "--threads",
        "2",
    ]);
    assert_eq!(exit_code(&out), 0, "{out:?}");
}

#[test]
fn threads_flag_rejects_bad_values() {
    for bad in ["zero", "0", "-3", "1.5"] {
        let out = gabm(&["--threads", bad, "compile", "x.fas"]);
        assert_eq!(exit_code(&out), 2, "value {bad:?}: {out:?}");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains(&format!(
                "invalid value '{bad}' for --threads: expected a positive integer"
            )),
            "value {bad:?}: {stderr}"
        );
    }
    let out = gabm(&["compile", "x.fas", "--threads"]);
    assert_eq!(exit_code(&out), 2, "{out:?}");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("--threads requires a value"),
        "{out:?}"
    );
}

#[test]
fn threads_env_is_validated() {
    let out = Command::new(env!("CARGO_BIN_EXE_gabm"))
        .args(["--version"])
        .env("GABM_THREADS", "banana")
        .output()
        .expect("gabm binary runs");
    assert_eq!(exit_code(&out), 2, "{out:?}");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("invalid GABM_THREADS value 'banana'"),
        "{out:?}"
    );
    let out = Command::new(env!("CARGO_BIN_EXE_gabm"))
        .args(["--version"])
        .env("GABM_THREADS", "3")
        .output()
        .expect("gabm binary runs");
    assert_eq!(exit_code(&out), 0, "{out:?}");
}

#[test]
fn trace_flag_rejects_bad_values_naming_the_flag() {
    let out = gabm(&["compile", "x.fas", "--trace"]);
    assert_eq!(exit_code(&out), 2, "{out:?}");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("--trace requires a value"),
        "{out:?}"
    );
    // A flag where the path should be is a missing value, not a file
    // named "--threads" — and the message names both flags.
    let out = gabm(&["--trace", "--threads", "2", "compile", "x.fas"]);
    assert_eq!(exit_code(&out), 2, "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("invalid value '--threads' for --trace"),
        "{stderr}"
    );
}

#[test]
fn trace_flag_writes_chrome_json_validated_by_trace_subcommand() {
    let dir = std::env::temp_dir().join("gabm_trace_cli_out");
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("compile_trace.json");
    let out = gabm(&[
        "--trace",
        trace.to_str().unwrap(),
        "compile",
        fixture("clean.fas").to_str().unwrap(),
    ]);
    assert_eq!(exit_code(&out), 0, "{out:?}");
    let text = std::fs::read_to_string(&trace).expect("trace file written");
    assert!(text.contains("\"traceEvents\""), "{text}");
    assert!(text.contains("fasvm.compile"), "{text}");
    // The trace subcommand accepts its own output...
    let out = gabm(&["trace", trace.to_str().unwrap()]);
    assert_eq!(exit_code(&out), 0, "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("top-level spans: fasvm.compile"),
        "{stdout}"
    );
    // ...and rejects files that are not trace-event JSON.
    let bad = dir.join("not_a_trace.json");
    std::fs::write(&bad, "{\"nope\": 1}").unwrap();
    let out = gabm(&["trace", bad.to_str().unwrap()]);
    assert_eq!(exit_code(&out), 2, "{out:?}");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("no 'traceEvents' array"),
        "{out:?}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trace_env_fallback_and_summary_flag() {
    let dir = std::env::temp_dir().join("gabm_trace_cli_env");
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("env_trace.json");
    let out = Command::new(env!("CARGO_BIN_EXE_gabm"))
        .args(["compile", fixture("clean.fas").to_str().unwrap()])
        .env("GABM_TRACE", trace.to_str().unwrap())
        .output()
        .expect("gabm binary runs");
    assert_eq!(exit_code(&out), 0, "{out:?}");
    assert!(trace.exists(), "GABM_TRACE fallback writes the trace file");

    let out = gabm(&[
        "--trace-summary",
        "compile",
        fixture("clean.fas").to_str().unwrap(),
    ]);
    assert_eq!(exit_code(&out), 0, "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("trace summary:"), "{stdout}");
    assert!(stdout.contains("fasvm.compile"), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn threads_and_trace_flags_compose_across_positions() {
    let dir = std::env::temp_dir().join("gabm_trace_cli_compose");
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("composed.json");
    let out = gabm(&[
        "--threads",
        "2",
        "compile",
        fixture("clean.fas").to_str().unwrap(),
        "--trace",
        trace.to_str().unwrap(),
    ]);
    assert_eq!(exit_code(&out), 0, "{out:?}");
    assert!(trace.exists());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unknown_flags_are_named() {
    let out = gabm(&["--frobnicate"]);
    assert_eq!(exit_code(&out), 2, "{out:?}");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("unknown flag '--frobnicate'"),
        "{out:?}"
    );
    let out = gabm(&["compile", "x.fas", "--wat"]);
    assert_eq!(exit_code(&out), 2, "{out:?}");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("unknown flag '--wat'"),
        "{out:?}"
    );
    let out = gabm(&["lint", "x.fas", "--wat"]);
    assert_eq!(exit_code(&out), 2, "{out:?}");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("unknown flag '--wat'"),
        "{out:?}"
    );
}
