//! The paper's evaluation example (§5): the triggered comparator, simulated
//! both as a generated FAS behavioural model and as the 11-transistor CMOS
//! circuit, under the same stimulus.
//!
//! ```text
//! cargo run --release --example comparator
//! ```

use gabm::models::comparator::{ComparatorSpec, OffState};
use gabm::models::CmosComparator;
use gabm::numeric::measure::{crossings, Edge};
use gabm::sim::analysis::tran::TranSpec;
use gabm::sim::circuit::{Circuit, NodeId};
use gabm::sim::devices::SourceWave;
use std::time::Instant;

fn stimulus(ckt: &mut Circuit, inp: NodeId, inn: NodeId, strobe: NodeId) {
    ckt.add_vsource(
        "VINP",
        inp,
        Circuit::GROUND,
        SourceWave::sine(0.0, 0.25, 50.0e3),
    );
    ckt.add_vsource(
        "VINN",
        inn,
        Circuit::GROUND,
        SourceWave::Sine {
            offset: 0.0,
            ampl: 0.25,
            freq: 50.0e3,
            delay: 0.0,
            phase: std::f64::consts::PI,
        },
    );
    ckt.add_vsource(
        "VSTB",
        strobe,
        Circuit::GROUND,
        SourceWave::pulse(-2.5, 2.5, 2.5e-6, 50e-9, 50e-9, 4.0e-6, 10.0e-6),
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tstop = 60.0e-6;

    // --- behavioural model (generated FAS) --------------------------------
    let spec = ComparatorSpec {
        off_state: OffState::Hold,
        ..ComparatorSpec::default()
    };
    println!("{}", spec.card()?);
    let machine = spec.machine()?;
    let mut beh = Circuit::new();
    let nodes: Vec<NodeId> = ComparatorSpec::pin_order()
        .iter()
        .map(|p| beh.node(p))
        .collect();
    beh.add_behavioral("XCMP", &nodes, Box::new(machine))?;
    beh.add_vsource("VDD", nodes[5], Circuit::GROUND, SourceWave::dc(2.5));
    beh.add_vsource("VSS", nodes[6], Circuit::GROUND, SourceWave::dc(-2.5));
    stimulus(&mut beh, nodes[0], nodes[1], nodes[2]);
    beh.add_resistor("RLP", nodes[3], Circuit::GROUND, 10.0e3)?;
    beh.add_resistor("RLN", nodes[4], Circuit::GROUND, 10.0e3)?;
    let t0 = Instant::now();
    let rb = beh.tran(&TranSpec::new(tstop))?;
    let t_beh = t0.elapsed();
    let w_beh = rb.voltage_waveform(nodes[3])?;

    // --- transistor-level circuit (11 MOS) --------------------------------
    let mut cmos = Circuit::new();
    let cn: Vec<NodeId> = CmosComparator::pin_order()
        .iter()
        .map(|p| cmos.node(p))
        .collect();
    CmosComparator::new().instantiate(&mut cmos, "XC", &cn)?;
    cmos.add_vsource("VDD", cn[4], Circuit::GROUND, SourceWave::dc(2.5));
    cmos.add_vsource("VSS", cn[5], Circuit::GROUND, SourceWave::dc(-2.5));
    stimulus(&mut cmos, cn[0], cn[1], cn[2]);
    cmos.add_resistor("RL", cn[3], Circuit::GROUND, 10.0e3)?;
    let t0 = Instant::now();
    let rc = cmos.tran(&TranSpec::new(tstop))?;
    let t_cmos = t0.elapsed();
    let w_cmos = rc.voltage_waveform(cn[3])?;

    // --- comparison --------------------------------------------------------
    println!(
        "behavioural: {} steps, {} NR iterations, {t_beh:?}",
        rb.stats.accepted_steps, rb.stats.newton_iterations
    );
    println!(
        "transistor:  {} steps, {} NR iterations, {t_cmos:?}",
        rc.stats.accepted_steps, rc.stats.newton_iterations
    );
    println!(
        "speedup {:.2}x (paper: 15.2 s / 4.9 s = 3.1x on a Sun Sparc 10/30)",
        t_cmos.as_secs_f64() / t_beh.as_secs_f64()
    );
    let tb = crossings(&w_beh, 0.0, Edge::Any)?;
    let tc = crossings(&w_cmos, 0.0, Edge::Any)?;
    println!(
        "output zero crossings: behavioural {} / transistor {}",
        tb.len(),
        tc.len()
    );
    Ok(())
}
