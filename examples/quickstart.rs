//! Quickstart: the paper's Fig. 1 pipeline on the Fig. 2 input stage.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Walks a model through all three representations — definition card,
//! functional diagram, HDL code — then simulates it coupled to an
//! electrical circuit and re-measures its parameters.

use gabm::charac::rigs;
use gabm::charac::{Dut, FnDut};
use gabm::codegen::{generate, Backend};
use gabm::core::check_diagram;
use gabm::core::constructs::InputStageSpec;
use gabm::fas::compile;
use gabm::schematic::render_ascii;
use gabm::sim::circuit::Circuit;
use std::collections::BTreeMap;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Definition card: the external view (§2.1).
    let spec = InputStageSpec::new("in", 1.0 / 1.0e6, 5.0e-12);
    let card = spec.card()?;
    println!("{card}\n");

    // 2. Functional diagram: the graphical behaviour description (§2.2).
    let diagram = spec.diagram()?;
    let report = check_diagram(&diagram);
    println!(
        "consistency: {} errors, {} warnings",
        report.error_count(),
        report.warning_count()
    );
    println!("{}", render_ascii(&diagram));

    // 3. Code generation (§2.3): the same diagram in three HDLs.
    let fas = generate(&diagram, Backend::Fas)?;
    println!("{}", fas.text);

    // 4. Simulation: compile the FAS code and measure the model in a
    //    circuit (§2.3/§2.4).
    let model = compile(&fas.text)?;
    let dut = FnDut::new(&["in"], move |ckt: &mut Circuit, name, nodes| {
        let machine = model
            .instantiate(&BTreeMap::new())
            .expect("defaults instantiate");
        ckt.add_behavioral(name, nodes, Box::new(machine))
    });
    let rin = rigs::input_resistance(&dut, "in", &[])?;
    let cin = rigs::input_capacitance(&dut, "in", &[], 5.0e-12)?;
    println!("extracted: {rin}");
    println!("extracted: {cin}");
    println!("assigned:  rin = 1.000000e6 ohm, cin = 5.000000e-12 F");
    println!("(pins: {:?})", dut.pin_names());
    Ok(())
}
