//! The §2.4 model check: surround a generated model with extraction rigs,
//! re-measure its instance parameters, and compare them with the assigned
//! values — the SimBoy workflow.
//!
//! ```text
//! cargo run --example model_check
//! ```

use gabm::charac::{check_model, rigs, validity, Bias, CharacError};
use gabm::codegen::{generate, Backend};
use gabm::core::constructs::InputStageSpec;
use gabm::fas::compile;
use gabm::models::dut::{cmos_comparator_dut, fas_dut};
use gabm::models::CmosComparator;
use std::collections::BTreeMap;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- behavioural input stage ------------------------------------------
    let rin = 2.2e6;
    let cin = 3.3e-12;
    let diagram = InputStageSpec::new("in", 1.0 / rin, cin).diagram()?;
    let code = generate(&diagram, Backend::Fas)?;
    let model = compile(&code.text)?;
    let dut = fas_dut(model, BTreeMap::new())?;
    let x_rin = rigs::input_resistance(&dut, "in", &[])?;
    let x_cin = rigs::input_capacitance(&dut, "in", &[], cin)?;
    let report = check_model(
        "input_stage",
        &[(("rin", rin), &x_rin), (("cin", cin), &x_cin)],
        0.15,
    );
    println!("{report}\n");

    // --- transistor-level comparator, characterized by the same rigs -------
    let dut = cmos_comparator_dut(CmosComparator::new());
    let bias = [
        ("inn", Bias::Ground),
        ("strobe", Bias::Voltage(2.5)),
        ("vdd", Bias::Voltage(2.5)),
        ("vss", Bias::Voltage(-2.5)),
    ];
    let xs = rigs::dc_transfer(&dut, "inp", "out", &bias, -0.4, 0.4, 0.02)?;
    println!("CMOS comparator DC transfer extractions:");
    for x in &xs {
        println!("  {x}");
    }

    // --- validity range -----------------------------------------------------
    // The behavioural input stage is exact for its RC; show the scan
    // machinery on a synthetic deviation model instead: valid while the
    // demanded d/dt is below 10^6 V/s.
    let scan = validity::scan_validity("slope demand [V/s]", 1.0e3, 1.0e8, 21, 0.1, |s| {
        Ok::<f64, CharacError>(if s < 1.0e6 { 0.0 } else { (s / 1.0e6).ln() })
    })?;
    println!(
        "\nvalidity: {} in [{:.3e}, {:.3e}] after {} probe runs",
        scan.axis, scan.lo, scan.hi, scan.evaluations
    );
    Ok(())
}
