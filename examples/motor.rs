//! Non-electrical behavioural modelling (the paper's §2 microsystem claim):
//! a DC motor with torque / angular-velocity conversion symbols, spinning
//! up a mechanical load, co-simulated with its electrical drive.
//!
//! ```text
//! cargo run --example motor
//! ```

use gabm::models::DcMotorSpec;
use gabm::schematic::render_ascii;
use gabm::sim::analysis::tran::TranSpec;
use gabm::sim::circuit::Circuit;
use gabm::sim::devices::SourceWave;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = DcMotorSpec::default();
    println!("{}", spec.card()?);
    let diagram = spec.diagram()?;
    println!("{}", render_ascii(&diagram));
    println!("{}", spec.fas_code()?);

    // Electrical side: 12 V drive with a series switch resistance.
    // Mechanical side (mobility analogy): inertia = capacitor, friction =
    // resistor on the axle node; angular velocity is the nodal quantity.
    let machine = spec.machine()?;
    let mut ckt = Circuit::new();
    let ta = ckt.node("ta");
    let tb = ckt.node("tb");
    let axle = ckt.node("axle");
    ckt.add_behavioral("XMOT", &[ta, tb, axle], Box::new(machine))?;
    ckt.add_vsource(
        "VBAT",
        ta,
        Circuit::GROUND,
        SourceWave::pulse(0.0, 12.0, 10.0e-3, 1.0e-4, 1.0e-4, 10.0, 0.0),
    );
    ckt.add_resistor("RRET", tb, Circuit::GROUND, 1.0e-3)?;
    let friction = 1.0e-3; // N·m·s/rad
    let inertia = 1.0e-4; // kg·m²
    ckt.add_resistor("RFRIC", axle, Circuit::GROUND, 1.0 / friction)?;
    ckt.add_capacitor("CJ", axle, Circuit::GROUND, inertia);

    let result = ckt.tran(&TranSpec::new(0.5))?;
    let w = result.voltage_waveform(axle)?;
    println!("time [ms]   omega [rad/s]");
    for k in 0..=20 {
        let t = 0.5 * k as f64 / 20.0;
        println!("{:8.1}   {:10.2}", t * 1e3, w.value_at(t)?);
    }
    let omega_end = *w.values().last().expect("non-empty run");
    println!(
        "steady state: {omega_end:.2} rad/s (analytic {:.2} rad/s)",
        spec.no_load_speed(12.0, friction)
    );
    Ok(())
}
