//! A miniature SPICE front end: read a netlist file, solve the operating
//! point and optionally a transient, print results — the workflow a 1994
//! user had with the paper's SPICE-level baseline.
//!
//! ```text
//! cargo run --example mini_spice -- netlists/cmos_comparator.cir
//! cargo run --example mini_spice -- netlists/cmos_comparator.cir --tran 10u out
//! ```

use gabm::numeric::plot::{ascii_plot, PlotOptions};
use gabm::sim::analysis::tran::TranSpec;
use gabm::sim::circuit::NodeId;
use gabm::sim::netlist::{parse_netlist, parse_value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let Some(path) = args.get(1) else {
        eprintln!("usage: mini_spice <netlist.cir> [--tran <tstop> <node>...]");
        std::process::exit(2);
    };
    let src = std::fs::read_to_string(path)?;
    let mut ckt = parse_netlist(&src)?;
    println!(
        "{path}: {} devices, {} nodes, {} unknowns",
        ckt.n_devices(),
        ckt.n_nodes(),
        ckt.n_unknowns()
    );

    // Operating point first, always.
    let op = ckt.op()?;
    println!("\noperating point:");
    for idx in 1..=ckt.n_nodes() {
        let node = NodeId::from_index(idx);
        println!(
            "  v({:<10}) = {:>12.6} V",
            ckt.node_name(node),
            op.voltage(node)
        );
    }
    println!(
        "  ({} Newton iterations, {} factorizations)",
        op.stats.newton_iterations, op.stats.factorizations
    );

    // Optional transient.
    if let Some(pos) = args.iter().position(|a| a == "--tran") {
        let tstop = parse_value(args.get(pos + 1).map(String::as_str).unwrap_or("1m"))?;
        let result = ckt.tran(&TranSpec::new(tstop))?;
        println!(
            "\ntransient to {tstop:.3e} s: {} steps ({} rejected), {} Newton iterations",
            result.stats.accepted_steps,
            result.stats.rejected_steps,
            result.stats.newton_iterations
        );
        let watch: Vec<&String> = args[pos + 2..].iter().collect();
        let mut traces = Vec::new();
        for name in &watch {
            if let Some(node) = ckt.find_node(name) {
                traces.push((name.as_str(), result.voltage_waveform(node)?));
            } else {
                eprintln!("  (no node named '{name}')");
            }
        }
        if !traces.is_empty() {
            let refs: Vec<(&str, &gabm::numeric::Waveform)> =
                traces.iter().map(|(n, w)| (*n, w)).collect();
            println!("{}", ascii_plot(&refs, &PlotOptions::default())?);
        }
    }
    Ok(())
}
